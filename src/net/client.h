#ifndef LSMSSD_NET_CLIENT_H_
#define LSMSSD_NET_CLIENT_H_

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/fault_socket.h"
#include "src/net/wire.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd::net {

// The *stable public client surface* of the network layer: everything a
// networked tool or bench needs lives in this header (plus the wire
// codec it re-exports). Client code must not include src/db headers —
// the wire protocol, not the Db class, is the compatibility contract.

/// Bounded-retry policy for the high-level ops (Put/Delete/Get/Scan/
/// Stats/Ping). The default — max_attempts = 1 — is "no retries": every
/// error surfaces exactly as it did before this policy existed.
///
/// What a retry may do depends on *where* the previous attempt failed:
///
///  - Failure while SENDING, or an explicit kOverloaded/kShuttingDown
///    rejection: the server provably did not execute the request (a torn
///    request frame is discarded whole; a shed request is rejected before
///    dispatch). Safe to resend, writes included.
///  - Transport failure while AWAITING THE REPLY (connection reset, peer
///    closed): ambiguous — the request may or may not have executed.
///    Idempotent reads (GET/SCAN/STATS/PING) resend freely; PUT/DELETE
///    resend only when `retry_writes` is set. Blind puts of
///    self-describing values tolerate duplicate application, so e.g. the
///    chaos bench opts in; read-modify-write callers should not.
///  - A receive *timeout* never resends: the reply is still owed on the
///    (aligned) stream, so the retry simply keeps waiting for it, and if
///    every attempt times out the owed reply is marked abandoned so a
///    later call on this client cannot misattribute it.
struct RetryPolicy {
  int max_attempts = 1;      ///< Total tries (1 = no retry).
  int initial_backoff_ms = 2;
  int max_backoff_ms = 250;
  double multiplier = 2.0;
  double jitter = 0.5;       ///< See ExponentialBackoff::Options.
  /// Resend PUT/DELETE after an *ambiguous* failure (see above). Off by
  /// default: duplicate application is the caller's risk to accept.
  bool retry_writes = false;
  uint64_t seed = 1;         ///< Jitter seed (deterministic schedules).
};

/// How to reach a server.
struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;           ///< Required.
  int connect_timeout_ms = 5000;
  /// Per send/recv syscall; 0 = no timeout (block forever). Expiry
  /// surfaces as a non-fatal TimedOut status — see the Client class
  /// comment for retry semantics.
  int io_timeout_ms = 30000;
  size_t max_frame_payload_bytes = kDefaultMaxPayloadBytes;
  RetryPolicy retry;
  /// Optional fault seam: when set, every send/recv consults it first
  /// (injected resets/truncations/EINTR/...). Not owned; must outlive
  /// the client. Test/bench only.
  SocketFaultInjector* fault_injector = nullptr;
};

/// Client-side resilience counters (cumulative since Connect()).
struct ClientStats {
  uint64_t retries = 0;            ///< Extra attempts beyond the first.
  uint64_t reconnects = 0;         ///< Successful re-dials of a torn conn.
  uint64_t overloaded_replies = 0; ///< kOverloaded/kShuttingDown rejections.
  uint64_t send_timeouts = 0;
  uint64_t recv_timeouts = 0;
  uint64_t abandoned_replies = 0;  ///< Owed replies written off / drained.
};

/// Server-side counters a client can read over the wire (the parseable
/// prefix of the STATS response; `text` is the full human-readable tail).
struct ServerStats {
  uint64_t payload_size = 0;        ///< Fixed record payload width.
  uint64_t shards = 0;
  uint64_t checkpoints = 0;
  uint64_t memtables_sealed = 0;
  uint64_t stall_events = 0;
  uint64_t quarantined_blocks = 0;  ///< Checksum-failed blocks right now.
  uint64_t scrub_corruptions = 0;   ///< Corrupt verdicts since open.
  uint64_t scrub_blocks_verified = 0;
  uint64_t frames_processed = 0;    ///< Server-side request frames handled.
  uint64_t connections_dropped = 0; ///< Malformed-frame connection drops.
  uint64_t frames_shed_overload = 0;   ///< Rejected kOverloaded, unexecuted.
  uint64_t frames_rejected_shutdown = 0; ///< Rejected kShuttingDown.
  uint64_t connections_dropped_slow = 0; ///< Evicted: response backlog cap.
  std::string text;                 ///< Full stats dump (human-readable).
};

/// Blocking request/response connection to one server. Not thread-safe:
/// use one Client per thread (the server multiplexes fine). Any transport
/// or protocol error leaves the connection dead — every later call
/// returns the same error; reconnect with Connect()/Reconnect() — with
/// one exception: a TimedOut status (io_timeout_ms expired waiting on a
/// slow or stalled server) is non-fatal. On a receive timeout any partial
/// frame stays buffered and the stream stays aligned, so the caller may
/// simply call ReceiveResponse() again (the reply to the *original*
/// request is still owed — do not send a new request first). A send
/// timeout is non-fatal only when no byte of the frame went out; timing
/// out mid-frame tears the stream and latches the connection dead like
/// any other error.
///
/// Retryable vs fatal: transport errors meaning "the peer went away"
/// (ECONNRESET/EPIPE/refused, peer closed the socket) surface as
/// Status::Unavailable — retryable with backoff, and the high-level ops
/// retry them automatically under ClientOptions::retry. IoError is
/// reserved for broken local resources and is never retried.
class Client {
 public:
  static StatusOr<std::unique_ptr<Client>> Connect(const ClientOptions& opts);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Inserts or blind-updates `key`. The value must be exactly the
  /// server's fixed payload width (ServerStats::payload_size).
  Status Put(Key key, std::string_view value);
  Status Delete(Key key);
  /// NotFound when the key is absent.
  StatusOr<std::string> Get(Key key);
  /// Live records with lo <= key <= hi in key order, at most `limit`
  /// (0 = server cap). Appends to *out.
  Status Scan(Key lo, Key hi, uint32_t limit, std::vector<ScanItem>* out);
  StatusOr<ServerStats> Stats();
  /// Health check: OK iff the server decoded and answered a PING frame.
  Status Ping();

  /// Tears down the current connection (if any) and dials a fresh one.
  /// Clears the dead-latch, the receive buffer, and all outstanding
  /// reply bookkeeping. The high-level ops call this automatically when
  /// the retry policy allows; it is public for callers driving SendRaw/
  /// ReceiveResponse pipelines by hand.
  Status Reconnect();

  /// Sends a pre-encoded request frame without waiting for the reply —
  /// the pipelining primitive (the server processes a connection's frames
  /// strictly in order). Pair with ReceiveResponse(); callers must
  /// eventually read exactly one response per sent frame.
  Status SendRaw(uint8_t opcode, std::string_view payload);
  /// Receives the next response frame.
  Status ReceiveResponse(Frame* frame);

  const ClientStats& stats() const { return stats_; }

 private:
  explicit Client(const ClientOptions& opts) : opts_(opts) {}

  /// Reply owed for a sent request frame. The server answers a
  /// connection's frames strictly in order, so the deque front is always
  /// the next reply on the stream; `abandoned` marks entries whose
  /// caller gave up waiting — their replies are drained and discarded
  /// instead of being misattributed to a later request.
  struct PendingReply {
    uint64_t seq = 0;
    bool abandoned = false;
  };

  /// One op through the retry policy: (re)send, await, decode leading
  /// status; on OK copies the body into *ok_body (when non-null).
  Status Invoke(Opcode op, std::string_view payload, bool is_write,
                std::string* ok_body);
  Status FillBuffer();       ///< One recv() into inbuf_.
  Status Fail(Status st);    ///< Latches the first error, closes the fd.
  /// send/recv with the fault seam applied (pass-through when no
  /// injector is configured).
  ssize_t IoSend(const void* buf, size_t len, int* err);
  ssize_t IoRecv(void* buf, size_t len, int* err);

  ClientOptions opts_;
  int fd_ = -1;
  std::string inbuf_;
  Status dead_;  ///< First transport/protocol error; OK while healthy.
  std::deque<PendingReply> pending_;
  uint64_t next_seq_ = 0;
  ClientStats stats_;
};

}  // namespace lsmssd::net

#endif  // LSMSSD_NET_CLIENT_H_
