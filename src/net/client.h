#ifndef LSMSSD_NET_CLIENT_H_
#define LSMSSD_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/wire.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd::net {

// The *stable public client surface* of the network layer: everything a
// networked tool or bench needs lives in this header (plus the wire
// codec it re-exports). Client code must not include src/db headers —
// the wire protocol, not the Db class, is the compatibility contract.

/// How to reach a server.
struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;           ///< Required.
  int connect_timeout_ms = 5000;
  /// Per send/recv syscall; 0 = no timeout (block forever). Expiry
  /// surfaces as a non-fatal TimedOut status — see the Client class
  /// comment for retry semantics.
  int io_timeout_ms = 30000;
  size_t max_frame_payload_bytes = kDefaultMaxPayloadBytes;
};

/// Server-side counters a client can read over the wire (the parseable
/// prefix of the STATS response; `text` is the full human-readable tail).
struct ServerStats {
  uint64_t payload_size = 0;        ///< Fixed record payload width.
  uint64_t shards = 0;
  uint64_t checkpoints = 0;
  uint64_t memtables_sealed = 0;
  uint64_t stall_events = 0;
  uint64_t quarantined_blocks = 0;  ///< Checksum-failed blocks right now.
  uint64_t scrub_corruptions = 0;   ///< Corrupt verdicts since open.
  uint64_t scrub_blocks_verified = 0;
  uint64_t frames_processed = 0;    ///< Server-side request frames handled.
  uint64_t connections_dropped = 0; ///< Malformed-frame connection drops.
  std::string text;                 ///< Full stats dump (human-readable).
};

/// Blocking request/response connection to one server. Not thread-safe:
/// use one Client per thread (the server multiplexes fine). Any transport
/// or protocol error leaves the connection dead — every later call
/// returns the same error; reconnect with Connect() — with one exception:
/// a TimedOut status (io_timeout_ms expired waiting on a slow or stalled
/// server) is non-fatal. On a receive timeout any partial frame stays
/// buffered and the stream stays aligned, so the caller may simply call
/// ReceiveResponse() again (the reply to the *original* request is still
/// owed — do not send a new request first). A send timeout is non-fatal
/// only when no byte of the frame went out; timing out mid-frame tears
/// the stream and latches the connection dead like any other error.
class Client {
 public:
  static StatusOr<std::unique_ptr<Client>> Connect(const ClientOptions& opts);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Inserts or blind-updates `key`. The value must be exactly the
  /// server's fixed payload width (ServerStats::payload_size).
  Status Put(Key key, std::string_view value);
  Status Delete(Key key);
  /// NotFound when the key is absent.
  StatusOr<std::string> Get(Key key);
  /// Live records with lo <= key <= hi in key order, at most `limit`
  /// (0 = server cap). Appends to *out.
  Status Scan(Key lo, Key hi, uint32_t limit, std::vector<ScanItem>* out);
  StatusOr<ServerStats> Stats();

  /// Sends a pre-encoded request frame without waiting for the reply —
  /// the pipelining primitive (the server processes a connection's frames
  /// strictly in order). Pair with ReceiveResponse(); callers must
  /// eventually read exactly one response per sent frame.
  Status SendRaw(uint8_t opcode, std::string_view payload);
  /// Receives the next response frame.
  Status ReceiveResponse(Frame* frame);

 private:
  explicit Client(const ClientOptions& opts) : opts_(opts) {}

  /// One blocking round trip; checks the response opcode matches.
  Status Call(Opcode op, std::string_view payload, Frame* reply);
  Status FillBuffer();       ///< One recv() into inbuf_.
  Status Fail(Status st);    ///< Latches the first error, closes the fd.

  ClientOptions opts_;
  int fd_ = -1;
  std::string inbuf_;
  Status dead_;  ///< First transport/protocol error; OK while healthy.
};

}  // namespace lsmssd::net

#endif  // LSMSSD_NET_CLIENT_H_
