#include "src/net/wire.h"

#include <cstring>

#include "src/util/crc32c.h"

namespace lsmssd::net {

namespace {

/// The single Status <-> wire mapping. Server encode and client decode
/// both walk this table, so the two directions can never disagree.
struct CodePair {
  StatusCode status;
  WireError wire;
};
constexpr CodePair kCodeTable[] = {
    {StatusCode::kOk, WireError::kOk},
    {StatusCode::kNotFound, WireError::kNotFound},
    {StatusCode::kInvalidArgument, WireError::kInvalidArgument},
    {StatusCode::kCorruption, WireError::kCorruption},
    {StatusCode::kIoError, WireError::kIoError},
    {StatusCode::kOutOfRange, WireError::kOutOfRange},
    {StatusCode::kFailedPrecondition, WireError::kFailedPrecondition},
    {StatusCode::kResourceExhausted, WireError::kResourceExhausted},
    {StatusCode::kUnimplemented, WireError::kUnimplemented},
    {StatusCode::kInternal, WireError::kInternal},
};

uint32_t FrameCrc(const uint8_t* header, std::string_view payload) {
  // Bytes [4, 12): version, opcode, reserved, length. The magic is
  // excluded (it is a framing sentinel, already checked byte-for-byte)
  // and the CRC field itself obviously is too.
  uint32_t crc = crc32c::Extend(0, header + 4, 8);
  return crc32c::Extend(
      crc, reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
}

}  // namespace

WireError WireErrorFromStatus(const Status& status) {
  for (const CodePair& p : kCodeTable) {
    if (p.status == status.code()) return p.wire;
  }
  // Codes that never originate server-side (e.g. the client-local
  // kTimedOut) have no wire encoding; collapse them to kInternal.
  return WireError::kInternal;
}

Status StatusFromWire(WireError code, std::string message) {
  for (const CodePair& p : kCodeTable) {
    if (p.wire == code) {
      return p.status == StatusCode::kOk ? Status::OK()
                                         : Status(p.status, std::move(message));
    }
  }
  switch (code) {
    case WireError::kUnsupportedVersion:
      return Status::FailedPrecondition("unsupported wire version: " +
                                        std::move(message));
    case WireError::kMalformedRequest:
      return Status::InvalidArgument("malformed request: " +
                                     std::move(message));
    case WireError::kOverloaded:
      return Status::Unavailable("server overloaded: " + std::move(message));
    case WireError::kShuttingDown:
      return Status::Unavailable("server shutting down: " +
                                 std::move(message));
    default:
      return Status::Internal("unknown wire error code " +
                              std::to_string(static_cast<int>(code)) + ": " +
                              std::move(message));
  }
}

std::string EncodeFrame(uint8_t opcode, std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(kWireMagic, sizeof(kWireMagic));
  frame.push_back(static_cast<char>(kWireVersion));
  frame.push_back(static_cast<char>(opcode));
  AppendU16(&frame, 0);  // reserved
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  const uint32_t crc =
      FrameCrc(reinterpret_cast<const uint8_t*>(frame.data()), payload);
  AppendU32(&frame, crc);
  frame.append(payload);
  return frame;
}

FrameDecodeResult DecodeFrame(std::string_view buf, size_t max_payload_bytes,
                              Frame* frame, size_t* consumed,
                              std::string* error) {
  auto malformed = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return FrameDecodeResult::kMalformed;
  };
  if (buf.size() < kFrameHeaderBytes) return FrameDecodeResult::kNeedMore;
  const uint8_t* h = reinterpret_cast<const uint8_t*>(buf.data());
  if (std::memcmp(h, kWireMagic, sizeof(kWireMagic)) != 0) {
    return malformed("bad magic");
  }
  size_t pos = 6;
  uint16_t reserved = 0;
  uint32_t length = 0;
  uint32_t crc = 0;
  ReadU16(buf, &pos, &reserved);
  ReadU32(buf, &pos, &length);
  ReadU32(buf, &pos, &crc);
  if (reserved != 0) return malformed("nonzero reserved field");
  if (length > max_payload_bytes) {
    return malformed("payload length " + std::to_string(length) +
                     " exceeds limit " + std::to_string(max_payload_bytes));
  }
  if (buf.size() < kFrameHeaderBytes + length) {
    return FrameDecodeResult::kNeedMore;
  }
  const std::string_view payload = buf.substr(kFrameHeaderBytes, length);
  if (FrameCrc(h, payload) != crc) return malformed("crc mismatch");
  frame->version = h[4];
  frame->opcode = h[5];
  frame->payload.assign(payload);
  *consumed = kFrameHeaderBytes + length;
  return FrameDecodeResult::kFrame;
}

// ---- Primitives -----------------------------------------------------------

void AppendU16(std::string* dst, uint16_t v) {
  dst->push_back(static_cast<char>(v & 0xff));
  dst->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU32(std::string* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendWireKey(std::string* dst, Key key) {
  for (int i = 7; i >= 0; --i) {
    dst->push_back(static_cast<char>((key >> (8 * i)) & 0xff));
  }
}

bool ReadU16(std::string_view buf, size_t* pos, uint16_t* v) {
  if (*pos > buf.size() || buf.size() - *pos < 2) return false;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data()) + *pos;
  *v = static_cast<uint16_t>(p[0] | (p[1] << 8));
  *pos += 2;
  return true;
}

bool ReadU32(std::string_view buf, size_t* pos, uint32_t* v) {
  if (*pos > buf.size() || buf.size() - *pos < 4) return false;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data()) + *pos;
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  *pos += 4;
  return true;
}

bool ReadU64(std::string_view buf, size_t* pos, uint64_t* v) {
  if (*pos > buf.size() || buf.size() - *pos < 8) return false;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data()) + *pos;
  uint64_t out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | p[i];
  *v = out;
  *pos += 8;
  return true;
}

bool ReadWireKey(std::string_view buf, size_t* pos, Key* key) {
  if (*pos > buf.size() || buf.size() - *pos < 8) return false;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data()) + *pos;
  Key out = 0;
  for (int i = 0; i < 8; ++i) out = (out << 8) | p[i];
  *key = out;
  *pos += 8;
  return true;
}

// ---- Requests -------------------------------------------------------------

std::string EncodeGetRequest(Key key) {
  std::string p;
  AppendWireKey(&p, key);
  return p;
}

std::string EncodePutRequest(Key key, std::string_view value) {
  std::string p;
  p.reserve(8 + value.size());
  AppendWireKey(&p, key);
  p.append(value);
  return p;
}

std::string EncodeDeleteRequest(Key key) { return EncodeGetRequest(key); }

std::string EncodeScanRequest(Key lo, Key hi, uint32_t limit) {
  std::string p;
  AppendWireKey(&p, lo);
  AppendWireKey(&p, hi);
  AppendU32(&p, limit);
  return p;
}

std::string EncodeStatsRequest() { return std::string(); }

bool DecodeGetRequest(std::string_view payload, Key* key) {
  size_t pos = 0;
  return ReadWireKey(payload, &pos, key) && pos == payload.size();
}

bool DecodePutRequest(std::string_view payload, Key* key,
                      std::string_view* value) {
  size_t pos = 0;
  if (!ReadWireKey(payload, &pos, key)) return false;
  *value = payload.substr(pos);
  return true;
}

bool DecodeDeleteRequest(std::string_view payload, Key* key) {
  return DecodeGetRequest(payload, key);
}

bool DecodeScanRequest(std::string_view payload, Key* lo, Key* hi,
                       uint32_t* limit) {
  size_t pos = 0;
  return ReadWireKey(payload, &pos, lo) && ReadWireKey(payload, &pos, hi) &&
         ReadU32(payload, &pos, limit) && pos == payload.size();
}

// ---- Responses ------------------------------------------------------------

namespace {
std::string EncodeErrorBody(WireError code, std::string_view msg) {
  std::string p;
  p.reserve(1 + 4 + msg.size());
  p.push_back(static_cast<char>(code));
  AppendU32(&p, static_cast<uint32_t>(msg.size()));
  p.append(msg);
  return p;
}
}  // namespace

std::string EncodeErrorResponse(const Status& status) {
  return EncodeErrorBody(WireErrorFromStatus(status), status.message());
}

std::string EncodeProtocolErrorResponse(WireError code, std::string_view msg) {
  return EncodeErrorBody(code, msg);
}

std::string EncodeOverloadedResponse(uint32_t retry_after_ms) {
  return EncodeErrorBody(
      WireError::kOverloaded,
      "retry_after_ms=" + std::to_string(retry_after_ms));
}

bool ParseRetryAfterMs(std::string_view message, uint32_t* retry_after_ms) {
  static constexpr std::string_view kTag = "retry_after_ms=";
  const size_t at = message.find(kTag);
  if (at == std::string_view::npos) return false;
  uint64_t value = 0;
  size_t pos = at + kTag.size();
  if (pos >= message.size() || message[pos] < '0' || message[pos] > '9') {
    return false;
  }
  for (; pos < message.size() && message[pos] >= '0' && message[pos] <= '9';
       ++pos) {
    value = value * 10 + static_cast<uint64_t>(message[pos] - '0');
    if (value > UINT32_MAX) return false;
  }
  *retry_after_ms = static_cast<uint32_t>(value);
  return true;
}

std::string EncodeGetResponse(std::string_view value) {
  std::string p;
  p.reserve(1 + value.size());
  p.push_back(static_cast<char>(WireError::kOk));
  p.append(value);
  return p;
}

std::string EncodeEmptyOkResponse() {
  return std::string(1, static_cast<char>(WireError::kOk));
}

std::string EncodeScanResponse(const std::vector<ScanItem>& items) {
  std::string p;
  p.push_back(static_cast<char>(WireError::kOk));
  AppendU32(&p, static_cast<uint32_t>(items.size()));
  for (const ScanItem& item : items) {
    AppendWireKey(&p, item.key);
    AppendU32(&p, static_cast<uint32_t>(item.value.size()));
    p.append(item.value);
  }
  return p;
}

std::string EncodeStatsResponse(std::string_view text) {
  std::string p;
  p.reserve(1 + text.size());
  p.push_back(static_cast<char>(WireError::kOk));
  p.append(text);
  return p;
}

Status DecodeResponseStatus(std::string_view payload, std::string_view* body) {
  *body = std::string_view();
  if (payload.empty()) {
    return Status::Internal("empty response payload");
  }
  const auto code = static_cast<WireError>(
      static_cast<uint8_t>(payload[0]));
  if (code == WireError::kOk) {
    *body = payload.substr(1);
    return Status::OK();
  }
  size_t pos = 1;
  uint32_t msg_len = 0;
  if (!ReadU32(payload, &pos, &msg_len) ||
      payload.size() - pos < msg_len) {
    return Status::Internal("truncated error response");
  }
  return StatusFromWire(code, std::string(payload.substr(pos, msg_len)));
}

bool DecodeScanResponseBody(std::string_view body,
                            std::vector<ScanItem>* items) {
  items->clear();
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadU32(body, &pos, &count)) return false;
  items->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ScanItem item;
    uint32_t len = 0;
    if (!ReadWireKey(body, &pos, &item.key) || !ReadU32(body, &pos, &len) ||
        body.size() - pos < len) {
      return false;
    }
    item.value.assign(body.substr(pos, len));
    pos += len;
    items->push_back(std::move(item));
  }
  return pos == body.size();
}

}  // namespace lsmssd::net
