#include "src/workload/trace.h"

#include <cstdio>
#include <cstring>
#include <limits>

#include "src/util/logging.h"

namespace lsmssd {

namespace {

constexpr char kMagic[8] = {'L', 'S', 'M', 'T', 'R', 'C', '0', '1'};

uint64_t Fnv1a64(const std::string& data, size_t begin, size_t end) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = begin; i < end; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::vector<WorkloadRequest> CaptureTrace(Workload* source, uint64_t n) {
  LSMSSD_CHECK(source != nullptr);
  std::vector<WorkloadRequest> trace;
  trace.reserve(n);
  for (uint64_t i = 0; i < n; ++i) trace.push_back(source->Next());
  return trace;
}

Status SaveTraceToFile(const std::vector<WorkloadRequest>& trace,
                       const std::string& path) {
  std::string data(kMagic, sizeof(kMagic));
  for (const WorkloadRequest& r : trace) {
    data.push_back(static_cast<char>(r.kind));
    PutU64(&data, r.key);
  }
  PutU64(&data, Fnv1a64(data, sizeof(kMagic), data.size()));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) return Status::IoError("short trace write");
  return Status::OK();
}

StatusOr<std::vector<WorkloadRequest>> LoadTraceFromFile(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);

  if (data.size() < sizeof(kMagic) + 8 ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad trace magic");
  }
  const size_t body = data.size() - 8;
  if ((body - sizeof(kMagic)) % 9 != 0) {
    return Status::Corruption("trace body not a whole number of entries");
  }
  if (GetU64(data.data() + body) != Fnv1a64(data, sizeof(kMagic), body)) {
    return Status::Corruption("trace checksum mismatch");
  }

  std::vector<WorkloadRequest> trace;
  trace.reserve((body - sizeof(kMagic)) / 9);
  for (size_t pos = sizeof(kMagic); pos < body; pos += 9) {
    WorkloadRequest r;
    const auto kind = static_cast<uint8_t>(data[pos]);
    if (kind > static_cast<uint8_t>(WorkloadRequest::Kind::kDelete)) {
      return Status::Corruption("unknown trace request kind");
    }
    r.kind = static_cast<WorkloadRequest::Kind>(kind);
    r.key = GetU64(data.data() + pos + 1);
    trace.push_back(r);
  }
  return trace;
}

TraceWorkload::TraceWorkload(std::vector<WorkloadRequest> trace, bool loop)
    : trace_(std::move(trace)), loop_(loop) {
  LSMSSD_CHECK(!trace_.empty()) << "empty trace";
}

WorkloadRequest TraceWorkload::Next() {
  LSMSSD_CHECK(!exhausted()) << "trace exhausted";
  const WorkloadRequest r = trace_[position_++];
  if (loop_ && position_ >= trace_.size()) position_ = 0;
  if (r.kind == WorkloadRequest::Kind::kInsert) {
    ++indexed_keys_;
  } else if (indexed_keys_ > 0) {
    --indexed_keys_;
  }
  return r;
}

uint64_t TraceWorkload::remaining() const {
  if (loop_) return std::numeric_limits<uint64_t>::max();
  return trace_.size() - position_;
}

}  // namespace lsmssd
