#ifndef LSMSSD_WORKLOAD_NORMAL_WORKLOAD_H_
#define LSMSSD_WORKLOAD_NORMAL_WORKLOAD_H_

#include "src/workload/workload.h"

namespace lsmssd {

/// The paper's Normal(sigma, omega) workload (Section V): insert keys are
/// drawn from a normal distribution truncated to the key domain, whose
/// mean jumps to a uniformly random location after every omega inserts.
/// sigma is expressed as a fraction of the key-domain length. Deletes are
/// generated exactly like Uniform's (existing keys, uniformly at random).
class NormalWorkload : public Workload {
 public:
  struct Params {
    Key key_min = 0;
    Key key_max = 1'000'000'000;
    /// Standard deviation / key-domain length. Paper default: 0.5%.
    double sigma_fraction = 0.005;
    /// Inserts between mean relocations. Paper default: 10,000.
    uint64_t omega = 10'000;
    double insert_ratio = 0.5;
    uint64_t seed = 1;
  };

  explicit NormalWorkload(const Params& params);

  WorkloadRequest Next() override;
  uint64_t indexed_keys() const override { return indexed_.size(); }
  void set_insert_ratio(double ratio) override { insert_ratio_ = ratio; }

  Key current_mean() const { return mean_; }

 private:
  Key SampleInsertKey();
  void MaybeMoveMean();

  Params params_;
  double insert_ratio_;
  Random rng_;
  SampledKeySet indexed_;
  Key mean_;
  double sigma_keys_;
  uint64_t inserts_since_move_ = 0;
};

}  // namespace lsmssd

#endif  // LSMSSD_WORKLOAD_NORMAL_WORKLOAD_H_
