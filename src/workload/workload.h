#ifndef LSMSSD_WORKLOAD_WORKLOAD_H_
#define LSMSSD_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/format/key_codec.h"
#include "src/util/random.h"

namespace lsmssd {

/// One modification request produced by a workload generator.
struct WorkloadRequest {
  enum class Kind { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  Key key = 0;
};

/// Deterministic request generator. Implementations track the set of
/// currently indexed keys so deletes target existing records and (for the
/// synthetic workloads) inserts target new keys — keeping the dataset size
/// in steady state under a 50/50 mix, as in Section V.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Produces the next request.
  virtual WorkloadRequest Next() = 0;

  /// Number of currently indexed keys (as tracked by the generator).
  virtual uint64_t indexed_keys() const = 0;

  /// Fraction of requests that are inserts. Ratio 1.0 turns the workload
  /// insert-only (used for the grow phase and the Figure 10 experiment).
  virtual void set_insert_ratio(double ratio) = 0;
};

/// Set of keys supporting O(1) insert, erase, membership, and uniform
/// random sampling (vector + position map with swap-remove). Workload
/// generators use it to model "delete an existing key chosen uniformly at
/// random".
class SampledKeySet {
 public:
  /// Returns false if the key was already present.
  bool Insert(Key key);
  /// Returns false if the key was absent.
  bool Erase(Key key);
  bool Contains(Key key) const { return index_.contains(key); }
  uint64_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  /// Uniform random member. Requires non-empty.
  Key Sample(Random* rng) const;

 private:
  std::vector<Key> keys_;
  std::unordered_map<Key, size_t> index_;
};

inline bool SampledKeySet::Insert(Key key) {
  auto [it, inserted] = index_.try_emplace(key, keys_.size());
  if (!inserted) return false;
  keys_.push_back(key);
  return true;
}

inline bool SampledKeySet::Erase(Key key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  const size_t pos = it->second;
  const Key last = keys_.back();
  keys_[pos] = last;
  index_[last] = pos;
  keys_.pop_back();
  index_.erase(it);
  return true;
}

inline Key SampledKeySet::Sample(Random* rng) const {
  return keys_[rng->Uniform(keys_.size())];
}

}  // namespace lsmssd

#endif  // LSMSSD_WORKLOAD_WORKLOAD_H_
