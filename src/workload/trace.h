#ifndef LSMSSD_WORKLOAD_TRACE_H_
#define LSMSSD_WORKLOAD_TRACE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/statusor.h"
#include "src/workload/workload.h"

namespace lsmssd {

/// Workload trace capture and replay. Traces make experiments portable
/// and exactly repeatable across machines and implementations — record a
/// generator's request stream once, replay it anywhere (including against
/// other LSM implementations for apples-to-apples write counts).
///
/// File format: "LSMTRC01" magic, then one 9-byte entry per request
/// ([u8 kind][u64 LE key]), then a trailing u64 FNV-1a checksum.

/// Captures `n` requests from `source` into an in-memory trace.
std::vector<WorkloadRequest> CaptureTrace(Workload* source, uint64_t n);

/// Serializes a trace to `path`.
Status SaveTraceToFile(const std::vector<WorkloadRequest>& trace,
                       const std::string& path);

/// Loads a trace; fails with Corruption on malformed files.
StatusOr<std::vector<WorkloadRequest>> LoadTraceFromFile(
    const std::string& path);

/// A Workload that replays a fixed trace, optionally looping. The
/// insert-ratio knob is ignored (the trace already fixes the mix);
/// indexed_keys() tracks the net insert/delete balance.
class TraceWorkload : public Workload {
 public:
  explicit TraceWorkload(std::vector<WorkloadRequest> trace,
                         bool loop = false);

  WorkloadRequest Next() override;
  uint64_t indexed_keys() const override { return indexed_keys_; }
  void set_insert_ratio(double /*ratio*/) override {}

  /// Requests remaining before the trace is exhausted (SIZE_MAX when
  /// looping).
  uint64_t remaining() const;
  bool exhausted() const { return !loop_ && position_ >= trace_.size(); }

 private:
  std::vector<WorkloadRequest> trace_;
  bool loop_;
  size_t position_ = 0;
  uint64_t indexed_keys_ = 0;
};

}  // namespace lsmssd

#endif  // LSMSSD_WORKLOAD_TRACE_H_
