#ifndef LSMSSD_WORKLOAD_YCSB_H_
#define LSMSSD_WORKLOAD_YCSB_H_

#include <cstdint>
#include <string_view>

#include "src/format/key_codec.h"
#include "src/util/random.h"

namespace lsmssd {

/// One request of a YCSB-style workload. Unlike the paper's generators
/// (insert/delete mixes driving the write-amortization experiments),
/// YCSB models a *serving* workload: reads, updates, inserts, scans, and
/// read-modify-writes against a loaded dataset — what a network server
/// must answer while compaction and maintenance run underneath.
struct YcsbRequest {
  enum class Op { kRead, kUpdate, kInsert, kScan, kReadModifyWrite };
  Op op = Op::kRead;
  Key key = 0;
  uint32_t scan_len = 0;  ///< Records to scan (kScan only), >= 1.
};

/// Configuration of a YcsbWorkload.
struct YcsbConfig {
  /// Core workload letter (case-insensitive):
  ///   A  50% read / 50% update      (update heavy)
  ///   B  95% read /  5% update      (read mostly)
  ///   C 100% read                   (read only)
  ///   E  95% scan /  5% insert      (short ranges)
  ///   F  50% read / 50% read-modify-write
  char workload = 'a';
  /// Records loaded before the run; inserts (workload E) grow past it.
  uint64_t initial_records = 10'000;
  /// Hashed keys land in [key_min, key_max] (defaults mirror the paper's
  /// key space). Hash collisions between two record indices are benign —
  /// both indices were inserted, so every chosen key exists.
  Key key_min = 1;
  Key key_max = 1'000'000'000;
  uint32_t max_scan_len = 100;  ///< Scan lengths uniform in [1, max].
  double zipf_theta = 0.99;     ///< YCSB's default skew.
  uint64_t seed = 1;
};

/// The YCSB zipfian item chooser (Gray et al.'s algorithm, as used by the
/// YCSB core generators): item 0 is the most popular, with P(i) ~
/// 1/(i+1)^theta. Supports growing the item count incrementally so
/// insert-bearing workloads stay O(1) per request.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t items, double theta);

  /// Next item in [0, items()).
  uint64_t Next(Random* rng);

  /// Raises the item count (no-op if `items` is not larger). Extends the
  /// zeta sum incrementally — O(added items) total, O(1) per insert.
  void GrowItems(uint64_t items);

  uint64_t items() const { return items_; }

 private:
  void ComputeConstants();

  uint64_t items_;
  double theta_;
  double zetan_;       ///< zeta(items, theta), extended incrementally.
  double zeta2theta_;  ///< zeta(2, theta).
  double alpha_;
  double eta_;
};

/// Deterministic YCSB-style request stream. Records are numbered in
/// insertion order; KeyForIndex scrambles each index into the key space
/// with FNV-1a (YCSB's "scrambled zipfian": skewed popularity over
/// records, spread uniformly over the key space so no key range is hot).
/// The load phase must insert KeyForIndex(0 .. initial_records) before
/// running the stream.
class YcsbWorkload {
 public:
  explicit YcsbWorkload(const YcsbConfig& config);

  YcsbRequest Next();

  /// The key of logical record `index` (stable for the config's key
  /// range; independent of seed).
  Key KeyForIndex(uint64_t index) const;

  /// Records inserted so far (initial load + workload inserts).
  uint64_t record_count() const { return record_count_; }

  const YcsbConfig& config() const { return config_; }

  /// Parses "A"/"a".."F" into a validated workload letter (only the five
  /// implemented core workloads pass; D is not implemented).
  static bool ParseWorkloadName(std::string_view name, char* workload);

  /// Human-readable mix, e.g. "50% read / 50% update".
  static const char* MixString(char workload);

 private:
  /// Scrambled-zipfian record index in [0, record_count_).
  uint64_t NextRecordIndex();

  YcsbConfig config_;
  Random rng_;
  ZipfianGenerator zipf_;
  uint64_t record_count_;
};

}  // namespace lsmssd

#endif  // LSMSSD_WORKLOAD_YCSB_H_
