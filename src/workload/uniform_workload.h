#ifndef LSMSSD_WORKLOAD_UNIFORM_WORKLOAD_H_
#define LSMSSD_WORKLOAD_UNIFORM_WORKLOAD_H_

#include "src/workload/workload.h"

namespace lsmssd {

/// The paper's Uniform workload (Section V): insert keys are drawn
/// uniformly at random from the keys *not* currently indexed; delete keys
/// uniformly at random from the keys currently indexed. Request types are
/// chosen independently with the configured insert ratio.
class UniformWorkload : public Workload {
 public:
  struct Params {
    Key key_min = 0;
    Key key_max = 1'000'000'000;  ///< Paper: keys in [0, 1e9].
    double insert_ratio = 0.5;
    uint64_t seed = 1;
  };

  explicit UniformWorkload(const Params& params);

  WorkloadRequest Next() override;
  uint64_t indexed_keys() const override { return indexed_.size(); }
  void set_insert_ratio(double ratio) override { insert_ratio_ = ratio; }

 private:
  Key SampleFreshKey();

  Params params_;
  double insert_ratio_;
  Random rng_;
  SampledKeySet indexed_;
};

}  // namespace lsmssd

#endif  // LSMSSD_WORKLOAD_UNIFORM_WORKLOAD_H_
