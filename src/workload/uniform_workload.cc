#include "src/workload/uniform_workload.h"

#include "src/util/logging.h"

namespace lsmssd {

UniformWorkload::UniformWorkload(const Params& params)
    : params_(params),
      insert_ratio_(params.insert_ratio),
      rng_(params.seed) {
  LSMSSD_CHECK_LE(params.key_min, params.key_max);
}

Key UniformWorkload::SampleFreshKey() {
  // Rejection sampling: the indexed set is a vanishing fraction of the
  // 1e9-key domain in all experiments, so this terminates immediately in
  // practice. The cap guards against degenerate configurations.
  for (int attempts = 0; attempts < 1000; ++attempts) {
    const Key k = rng_.UniformRange(params_.key_min, params_.key_max);
    if (!indexed_.Contains(k)) return k;
  }
  LSMSSD_CHECK(false) << "key domain saturated; enlarge [key_min, key_max]";
  return 0;
}

WorkloadRequest UniformWorkload::Next() {
  const bool insert = indexed_.empty() || rng_.Bernoulli(insert_ratio_);
  WorkloadRequest request;
  if (insert) {
    request.kind = WorkloadRequest::Kind::kInsert;
    request.key = SampleFreshKey();
    indexed_.Insert(request.key);
  } else {
    request.kind = WorkloadRequest::Kind::kDelete;
    request.key = indexed_.Sample(&rng_);
    indexed_.Erase(request.key);
  }
  return request;
}

}  // namespace lsmssd
