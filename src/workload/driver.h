#ifndef LSMSSD_WORKLOAD_DRIVER_H_
#define LSMSSD_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/lsm/lsm_tree.h"
#include "src/workload/workload.h"

namespace lsmssd {

/// Deterministic payload for `key` (pattern derived from the key so tests
/// can verify Get() results without remembering values).
std::string MakePayload(const Options& options, Key key);

/// Applies one workload request to the tree.
Status ApplyRequest(LsmTree* tree, const WorkloadRequest& request);

/// Measurements of one experiment window.
struct WindowMetrics {
  uint64_t requests = 0;
  uint64_t request_bytes = 0;      ///< requests * record_size.
  uint64_t blocks_written = 0;     ///< Data-block writes in the window.
  double elapsed_seconds = 0.0;    ///< Wall clock.
  LsmStats stats_delta;            ///< Full per-level delta.

  /// The paper's headline metric: blocks written per 1 MB worth of
  /// requests.
  double BlocksPerMb() const;
  /// Seconds per 1 MB worth of requests (Figure 7's metric).
  double SecondsPerMb() const;
};

/// Drives a tree with a workload through the paper's experiment protocol
/// (Section V-A): grow with inserts to a target dataset size, switch to
/// the steady-state mix, wait until at least one second-to-last-level
/// worth of data has merged into the bottom level, then measure windows.
class WorkloadDriver {
 public:
  /// `tree` and `workload` must outlive the driver.
  WorkloadDriver(LsmTree* tree, Workload* workload);

  /// Applies `n` requests.
  Status Run(uint64_t n);

  /// Applies requests until the tree's dataset reaches `target_bytes`
  /// (approximate record bytes), using insert-only requests.
  Status GrowTo(uint64_t target_bytes);

  /// Restores the steady-state insert ratio and runs until at least
  /// `K_{h-2} * B` records have merged into the bottom level since the
  /// call, so measurements see steady-state behavior.
  Status ReachSteadyState(double steady_insert_ratio = 0.5);

  /// Runs `request_bytes` worth of requests and returns the window's
  /// metrics.
  StatusOr<WindowMetrics> MeasureWindow(uint64_t request_bytes);

  /// Adapter for MixedLearner: applies one request from this driver's
  /// workload. (The learner replays on a scratch tree, so pass a scratch
  /// driver's function.)
  std::function<Status(LsmTree*)> RequestFn();

  LsmTree* tree() { return tree_; }
  Workload* workload() { return workload_; }
  uint64_t requests_applied() const { return requests_applied_; }

 private:
  LsmTree* tree_;
  Workload* workload_;
  uint64_t requests_applied_ = 0;
};

}  // namespace lsmssd

#endif  // LSMSSD_WORKLOAD_DRIVER_H_
