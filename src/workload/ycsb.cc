#include "src/workload/ycsb.h"

#include <cctype>
#include <cmath>

#include "src/util/logging.h"

namespace lsmssd {

namespace {

/// FNV-1a over the 8 little-endian bytes of `v`. Stable across platforms
/// (it is part of what makes a YCSB run reproducible), and the same hash
/// family Db::ShardOfKey uses — but over record *indices*, so the two
/// never interact.
uint64_t Fnv1a64(uint64_t v) {
  uint64_t h = 14695981039346656037ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t items, double theta)
    : items_(0), theta_(theta), zetan_(0) {
  LSMSSD_CHECK(items > 0) << "zipfian needs at least one item";
  LSMSSD_CHECK(theta > 0 && theta < 1) << "theta must be in (0, 1)";
  zeta2theta_ = 1.0 + std::pow(0.5, theta_);
  GrowItems(items);
}

void ZipfianGenerator::GrowItems(uint64_t items) {
  if (items <= items_) return;
  for (uint64_t i = items_; i < items; ++i) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
  }
  items_ = items;
  ComputeConstants();
}

void ZipfianGenerator::ComputeConstants() {
  alpha_ = 1.0 / (1.0 - theta_);
  const double n = static_cast<double>(items_);
  eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Random* rng) {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (items_ >= 2 && uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double spread = eta_ * u - eta_ + 1.0;
  uint64_t item = static_cast<uint64_t>(
      static_cast<double>(items_) * std::pow(spread, alpha_));
  if (item >= items_) item = items_ - 1;
  return item;
}

YcsbWorkload::YcsbWorkload(const YcsbConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.initial_records > 0 ? config.initial_records : 1,
            config.zipf_theta),
      record_count_(config.initial_records) {
  char normalized = 0;
  LSMSSD_CHECK(ParseWorkloadName(std::string_view(&config_.workload, 1),
                                 &normalized))
      << "unsupported YCSB workload '" << config_.workload << "'";
  config_.workload = normalized;
  LSMSSD_CHECK(config_.initial_records > 0);
  LSMSSD_CHECK(config_.key_min <= config_.key_max);
  LSMSSD_CHECK(config_.max_scan_len >= 1);
}

bool YcsbWorkload::ParseWorkloadName(std::string_view name, char* workload) {
  if (name.size() != 1) return false;
  const char c = static_cast<char>(
      std::tolower(static_cast<unsigned char>(name[0])));
  if (c != 'a' && c != 'b' && c != 'c' && c != 'e' && c != 'f') return false;
  *workload = c;
  return true;
}

const char* YcsbWorkload::MixString(char workload) {
  switch (workload) {
    case 'a':
      return "50% read / 50% update";
    case 'b':
      return "95% read / 5% update";
    case 'c':
      return "100% read";
    case 'e':
      return "95% scan / 5% insert";
    case 'f':
      return "50% read / 50% read-modify-write";
    default:
      return "?";
  }
}

Key YcsbWorkload::KeyForIndex(uint64_t index) const {
  const uint64_t width = config_.key_max - config_.key_min + 1;
  // width == 0 would mean the full uint64 domain; the config requires
  // key_min <= key_max, and practical key spaces are far smaller.
  return config_.key_min + (width == 0 ? Fnv1a64(index)
                                       : Fnv1a64(index) % width);
}

uint64_t YcsbWorkload::NextRecordIndex() {
  const uint64_t z = zipf_.Next(&rng_);
  // Scramble: skewed popularity over *some* records, but which records
  // are hot is spread uniformly (no correlation with insertion order).
  return Fnv1a64(z) % record_count_;
}

YcsbRequest YcsbWorkload::Next() {
  YcsbRequest req;
  const double p = rng_.NextDouble();
  switch (config_.workload) {
    case 'a':
      req.op = p < 0.5 ? YcsbRequest::Op::kRead : YcsbRequest::Op::kUpdate;
      break;
    case 'b':
      req.op = p < 0.95 ? YcsbRequest::Op::kRead : YcsbRequest::Op::kUpdate;
      break;
    case 'c':
      req.op = YcsbRequest::Op::kRead;
      break;
    case 'e':
      req.op = p < 0.95 ? YcsbRequest::Op::kScan : YcsbRequest::Op::kInsert;
      break;
    case 'f':
      req.op = p < 0.5 ? YcsbRequest::Op::kRead
                       : YcsbRequest::Op::kReadModifyWrite;
      break;
  }
  if (req.op == YcsbRequest::Op::kInsert) {
    const uint64_t index = record_count_++;
    zipf_.GrowItems(record_count_);
    req.key = KeyForIndex(index);
    return req;
  }
  req.key = KeyForIndex(NextRecordIndex());
  if (req.op == YcsbRequest::Op::kScan) {
    req.scan_len = static_cast<uint32_t>(
        rng_.UniformRange(1, config_.max_scan_len));
  }
  return req;
}

}  // namespace lsmssd
