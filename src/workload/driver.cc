#include "src/workload/driver.h"

#include <chrono>

#include "src/util/logging.h"

namespace lsmssd {

std::string MakePayload(const Options& options, Key key) {
  std::string payload(options.payload_size, '\0');
  // Cheap key-derived pattern; xorshift of the key seeds every byte.
  uint64_t x = key * 0x9e3779b97f4a7c15ULL + 1;
  for (size_t i = 0; i < payload.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    payload[i] = static_cast<char>(x & 0xff);
  }
  return payload;
}

Status ApplyRequest(LsmTree* tree, const WorkloadRequest& request) {
  switch (request.kind) {
    case WorkloadRequest::Kind::kInsert:
      return tree->Put(request.key,
                       MakePayload(tree->options(), request.key));
    case WorkloadRequest::Kind::kDelete:
      return tree->Delete(request.key);
  }
  return Status::Internal("unknown request kind");
}

double WindowMetrics::BlocksPerMb() const {
  if (request_bytes == 0) return 0.0;
  const double mb = static_cast<double>(request_bytes) / (1024.0 * 1024.0);
  return static_cast<double>(blocks_written) / mb;
}

double WindowMetrics::SecondsPerMb() const {
  if (request_bytes == 0) return 0.0;
  const double mb = static_cast<double>(request_bytes) / (1024.0 * 1024.0);
  return elapsed_seconds / mb;
}

WorkloadDriver::WorkloadDriver(LsmTree* tree, Workload* workload)
    : tree_(tree), workload_(workload) {
  LSMSSD_CHECK(tree != nullptr);
  LSMSSD_CHECK(workload != nullptr);
}

Status WorkloadDriver::Run(uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    LSMSSD_RETURN_IF_ERROR(ApplyRequest(tree_, workload_->Next()));
    ++requests_applied_;
  }
  return Status::OK();
}

Status WorkloadDriver::GrowTo(uint64_t target_bytes) {
  workload_->set_insert_ratio(1.0);
  while (tree_->ApproximateDataBytes() < target_bytes) {
    LSMSSD_RETURN_IF_ERROR(Run(1));
  }
  return Status::OK();
}

Status WorkloadDriver::ReachSteadyState(double steady_insert_ratio) {
  workload_->set_insert_ratio(steady_insert_ratio);
  const size_t h = tree_->num_levels();
  if (h < 2) return Status::OK();
  const size_t bottom = h - 1;
  const uint64_t target =
      tree_->LevelCapacityBlocks(bottom >= 1 ? bottom - 1 : 0) *
      tree_->options().records_per_block();
  auto merged_into_bottom = [&]() -> uint64_t {
    const auto& v = tree_->stats().records_merged_into;
    return bottom < v.size() ? v[bottom] : 0;
  };
  const uint64_t start = merged_into_bottom();
  while (merged_into_bottom() - start < target) {
    LSMSSD_RETURN_IF_ERROR(Run(1));
  }
  return Status::OK();
}

StatusOr<WindowMetrics> WorkloadDriver::MeasureWindow(
    uint64_t request_bytes) {
  const uint64_t record_size = tree_->options().record_size();
  const uint64_t n = (request_bytes + record_size - 1) / record_size;

  const LsmStats before = tree_->stats();
  const uint64_t device_writes_before = tree_->device()->stats().block_writes();
  const auto t0 = std::chrono::steady_clock::now();
  LSMSSD_RETURN_IF_ERROR(Run(n));
  const auto t1 = std::chrono::steady_clock::now();

  WindowMetrics m;
  m.requests = n;
  m.request_bytes = n * record_size;
  m.blocks_written =
      tree_->device()->stats().block_writes() - device_writes_before;
  m.elapsed_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  m.stats_delta = tree_->stats().DeltaSince(before);
  return m;
}

std::function<Status(LsmTree*)> WorkloadDriver::RequestFn() {
  return [this](LsmTree* tree) {
    ++requests_applied_;
    return ApplyRequest(tree, workload_->Next());
  };
}

}  // namespace lsmssd
