#ifndef LSMSSD_WORKLOAD_TPC_WORKLOAD_H_
#define LSMSSD_WORKLOAD_TPC_WORKLOAD_H_

#include <deque>
#include <vector>

#include "src/workload/workload.h"

namespace lsmssd {

/// The paper's TPC workload (Section V), loosely based on TPC-C
/// NEW_ORDER: an insert picks a warehouse and district at random and
/// creates the next (sequential) order id there; a delete transaction
/// picks a warehouse and district at random and removes its 10 oldest
/// orders. Keys pack (warehouse, district, order id) into a bit string —
/// uniform across districts, sequential within one, i.e. skewless overall
/// (which is why the paper's TPC plots resemble Uniform).
class TpcWorkload : public Workload {
 public:
  struct Params {
    uint32_t warehouses = 16;
    uint32_t districts_per_warehouse = 10;
    /// Orders removed per delete transaction (TPC-C delivery batch).
    uint32_t deletes_per_batch = 10;
    /// Fraction of transactions that are inserts; each delete transaction
    /// expands into deletes_per_batch individual requests.
    double insert_ratio = 0.5;
    uint64_t seed = 1;
    /// Total key width in bits; must not exceed 8 * Options::key_size.
    uint32_t key_bits = 32;
  };

  explicit TpcWorkload(const Params& params);

  WorkloadRequest Next() override;
  uint64_t indexed_keys() const override { return indexed_keys_; }
  void set_insert_ratio(double ratio) override { insert_ratio_ = ratio; }

  /// Bit-packed key: [warehouse | district | order id]. Order ids get 20
  /// bits (~1M live orders per district); warehouse/district widths are
  /// sized from the params.
  Key MakeKey(uint32_t warehouse, uint32_t district, uint64_t order) const;

 private:
  struct District {
    uint64_t next_order = 0;   ///< Next order id to insert.
    uint64_t oldest_order = 0; ///< Oldest still-live order id.
    uint64_t live() const { return next_order - oldest_order; }
  };

  District& DistrictAt(uint32_t warehouse, uint32_t district);
  void EnqueueDeleteBatch();

  Params params_;
  double insert_ratio_;
  Random rng_;
  std::vector<District> districts_;
  std::deque<Key> pending_deletes_;
  uint64_t indexed_keys_ = 0;
  uint32_t order_bits_;
};

}  // namespace lsmssd

#endif  // LSMSSD_WORKLOAD_TPC_WORKLOAD_H_
