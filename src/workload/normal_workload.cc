#include "src/workload/normal_workload.h"

#include <cmath>

#include "src/util/logging.h"

namespace lsmssd {

NormalWorkload::NormalWorkload(const Params& params)
    : params_(params),
      insert_ratio_(params.insert_ratio),
      rng_(params.seed) {
  LSMSSD_CHECK_LT(params.key_min, params.key_max);
  LSMSSD_CHECK_GT(params.sigma_fraction, 0.0);
  LSMSSD_CHECK_GT(params.omega, 0u);
  const double domain =
      static_cast<double>(params.key_max - params.key_min) + 1.0;
  sigma_keys_ = params.sigma_fraction * domain;
  mean_ = rng_.UniformRange(params.key_min, params.key_max);
}

void NormalWorkload::MaybeMoveMean() {
  if (++inserts_since_move_ >= params_.omega) {
    inserts_since_move_ = 0;
    mean_ = rng_.UniformRange(params_.key_min, params_.key_max);
  }
}

Key NormalWorkload::SampleInsertKey() {
  // Draw until the (truncated) variate lands on an un-indexed key. The
  // dense center of a tight distribution can saturate; fall back to a
  // fresh uniform key if that happens.
  for (int attempts = 0; attempts < 1000; ++attempts) {
    const double x =
        static_cast<double>(mean_) + rng_.NextGaussian() * sigma_keys_;
    if (x < static_cast<double>(params_.key_min) ||
        x > static_cast<double>(params_.key_max)) {
      continue;  // Truncate to the key space.
    }
    const Key k = static_cast<Key>(std::llround(x));
    if (!indexed_.Contains(k)) return k;
  }
  for (int attempts = 0; attempts < 1000; ++attempts) {
    const Key k = rng_.UniformRange(params_.key_min, params_.key_max);
    if (!indexed_.Contains(k)) return k;
  }
  LSMSSD_CHECK(false) << "key domain saturated; enlarge [key_min, key_max]";
  return 0;
}

WorkloadRequest NormalWorkload::Next() {
  const bool insert = indexed_.empty() || rng_.Bernoulli(insert_ratio_);
  WorkloadRequest request;
  if (insert) {
    request.kind = WorkloadRequest::Kind::kInsert;
    request.key = SampleInsertKey();
    indexed_.Insert(request.key);
    MaybeMoveMean();
  } else {
    request.kind = WorkloadRequest::Kind::kDelete;
    request.key = indexed_.Sample(&rng_);
    indexed_.Erase(request.key);
  }
  return request;
}

}  // namespace lsmssd
