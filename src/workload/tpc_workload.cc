#include "src/workload/tpc_workload.h"

#include "src/util/logging.h"

namespace lsmssd {

namespace {
uint32_t BitsFor(uint32_t n) {
  uint32_t bits = 0;
  while ((1u << bits) < n) ++bits;
  return bits == 0 ? 1 : bits;
}
}  // namespace

TpcWorkload::TpcWorkload(const Params& params)
    : params_(params),
      insert_ratio_(params.insert_ratio),
      rng_(params.seed),
      districts_(static_cast<size_t>(params.warehouses) *
                 params.districts_per_warehouse) {
  LSMSSD_CHECK_GT(params.warehouses, 0u);
  LSMSSD_CHECK_GT(params.districts_per_warehouse, 0u);
  LSMSSD_CHECK_GT(params.deletes_per_batch, 0u);
  const uint32_t w_bits = BitsFor(params.warehouses);
  const uint32_t d_bits = BitsFor(params.districts_per_warehouse);
  LSMSSD_CHECK_GT(params.key_bits, w_bits + d_bits)
      << "key_bits too small for warehouse/district encoding";
  order_bits_ = params.key_bits - w_bits - d_bits;
}

Key TpcWorkload::MakeKey(uint32_t warehouse, uint32_t district,
                         uint64_t order) const {
  const uint32_t d_bits = BitsFor(params_.districts_per_warehouse);
  LSMSSD_DCHECK(order < (uint64_t{1} << order_bits_))
      << "order id overflowed its bit field; raise key_bits";
  return (static_cast<Key>(warehouse) << (d_bits + order_bits_)) |
         (static_cast<Key>(district) << order_bits_) | order;
}

TpcWorkload::District& TpcWorkload::DistrictAt(uint32_t warehouse,
                                               uint32_t district) {
  return districts_[static_cast<size_t>(warehouse) *
                        params_.districts_per_warehouse +
                    district];
}

void TpcWorkload::EnqueueDeleteBatch() {
  // Pick a random district with enough live orders; give up after a few
  // tries (the caller falls back to an insert).
  for (int attempts = 0; attempts < 64; ++attempts) {
    const auto w = static_cast<uint32_t>(rng_.Uniform(params_.warehouses));
    const auto d = static_cast<uint32_t>(
        rng_.Uniform(params_.districts_per_warehouse));
    District& district = DistrictAt(w, d);
    if (district.live() < params_.deletes_per_batch) continue;
    for (uint32_t i = 0; i < params_.deletes_per_batch; ++i) {
      pending_deletes_.push_back(MakeKey(w, d, district.oldest_order));
      ++district.oldest_order;
    }
    return;
  }
}

WorkloadRequest TpcWorkload::Next() {
  WorkloadRequest request;
  if (!pending_deletes_.empty()) {
    request.kind = WorkloadRequest::Kind::kDelete;
    request.key = pending_deletes_.front();
    pending_deletes_.pop_front();
    --indexed_keys_;
    return request;
  }

  // insert_ratio is a *request*-level ratio, but one delete transaction
  // expands into a batch of deletes_per_batch requests. Convert to the
  // per-transaction insert probability q with
  //   q / (q + batch * (1 - q)) = insert_ratio.
  const double r = insert_ratio_;
  const double batch = params_.deletes_per_batch;
  const double q =
      r >= 1.0 ? 1.0 : (r * batch) / (1.0 - r + r * batch);
  if (!rng_.Bernoulli(q)) {
    EnqueueDeleteBatch();
    if (!pending_deletes_.empty()) {
      request.kind = WorkloadRequest::Kind::kDelete;
      request.key = pending_deletes_.front();
      pending_deletes_.pop_front();
      --indexed_keys_;
      return request;
    }
    // No district has a full batch yet: insert instead.
  }

  const auto w = static_cast<uint32_t>(rng_.Uniform(params_.warehouses));
  const auto d =
      static_cast<uint32_t>(rng_.Uniform(params_.districts_per_warehouse));
  District& district = DistrictAt(w, d);
  request.kind = WorkloadRequest::Kind::kInsert;
  request.key = MakeKey(w, d, district.next_order);
  ++district.next_order;
  ++indexed_keys_;
  return request;
}

}  // namespace lsmssd
