#ifndef LSMSSD_STORAGE_BLOCK_DEVICE_H_
#define LSMSSD_STORAGE_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/storage/block.h"
#include "src/storage/io_stats.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// Abstract SSD-like block store. Blocks are written once at allocation
/// time and never updated in place (LSM's defining property); they are read
/// any number of times and eventually freed. Implementations must account
/// every physical read/write in stats().
///
/// Thread-safety: the concrete devices in this repo (Mem/File and the
/// Cached/Pinned/FaultInjection decorators) guard their allocation
/// bookkeeping with internal mutexes, so allocations and frees of
/// *distinct* blocks may run concurrently with reads of *other* blocks —
/// the background compaction worker writes and reclaims its private merge
/// output while reader threads hold only the shared tree lock. Callers
/// must still serialize operations on the *same* block id: never free a
/// block another thread may still read (lsmssd::Db guarantees this — all
/// frees of published blocks happen under the exclusive tree lock, and
/// off-lock frees touch only blocks no reader has seen; see DESIGN.md,
/// "Threading model"). Restore-time bulk loading is single-threaded.
/// Flush() only fsyncs and may overlap anything.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Size in bytes of every block on this device.
  virtual size_t block_size() const = 0;

  /// Allocates a fresh block and writes `data` into it. `data.size()` must
  /// be <= block_size(); shorter payloads are zero-padded. Counts one block
  /// write. Returns the new block's id.
  virtual StatusOr<BlockId> WriteNewBlock(const BlockData& data) = 0;

  /// Reads block `id` into `*out` (resized to block_size()). Counts one
  /// block read.
  virtual Status ReadBlock(BlockId id, BlockData* out) = 0;

  /// Reads block `id` with shared ownership — the zero-copy entry point of
  /// the read path. Implementations backed by memory (MemBlockDevice, a
  /// buffer-cache hit in CachedBlockDevice) return their resident image
  /// without copying; the default falls back to ReadBlock plus one copy.
  /// The returned data stays valid even if the block is freed afterwards
  /// (readers hold a reference; the device merely drops its own).
  /// I/O accounting is identical to ReadBlock.
  virtual StatusOr<std::shared_ptr<const BlockData>> ReadBlockShared(
      BlockId id) {
    auto data = std::make_shared<BlockData>();
    LSMSSD_RETURN_IF_ERROR(ReadBlock(id, data.get()));
    return std::shared_ptr<const BlockData>(std::move(data));
  }

  /// Allocates and writes `blocks.size()` fresh blocks in one vectored
  /// call, appending the new ids to `*ids` in input order. Semantically
  /// equivalent to calling WriteNewBlock on each element in order — the
  /// paper's block-write metric counts every block exactly once either way
  /// — but implementations may coalesce adjacent physical slots into a
  /// single syscall (see FileBlockDevice) and tick the batch counters in
  /// stats(). All-or-nothing: on failure no block from this call is live,
  /// nothing is appended to `*ids`, and no I/O from this call is counted.
  /// The default loops WriteNewBlock and rolls back on error.
  virtual Status WriteBlocks(const std::vector<BlockData>& blocks,
                             std::vector<BlockId>* ids) {
    std::vector<BlockId> fresh;
    fresh.reserve(blocks.size());
    for (const BlockData& data : blocks) {
      StatusOr<BlockId> id = WriteNewBlock(data);
      if (!id.ok()) {
        for (BlockId b : fresh) (void)FreeBlock(b);
        return id.status();
      }
      fresh.push_back(*id);
    }
    if (blocks.size() > 1) stats_.RecordBatchWrite(blocks.size());
    ids->insert(ids->end(), fresh.begin(), fresh.end());
    return Status::OK();
  }

  /// Reads `ids.size()` live blocks in one vectored call; `out[i]` receives
  /// block `ids[i]` (the vector is resized). Accounting matches per-block
  /// ReadBlock calls, plus batch counters on implementations that coalesce.
  /// Fails on the first unreadable block (earlier slots of `*out` may hold
  /// data; treat `*out` as unspecified on error). The default loops
  /// ReadBlock.
  virtual Status ReadBlocks(const std::vector<BlockId>& ids,
                            std::vector<BlockData>* out) {
    out->resize(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      LSMSSD_RETURN_IF_ERROR(ReadBlock(ids[i], &(*out)[i]));
    }
    if (ids.size() > 1) stats_.RecordBatchRead(ids.size());
    return Status::OK();
  }

  /// Releases block `id`. The id must be live. After freeing, reads of `id`
  /// fail.
  virtual Status FreeBlock(BlockId id) = 0;

  /// Verifies block `id` against its out-of-band checksum without handing
  /// the payload to the caller — the scrub primitive. Returns Corruption
  /// naming the id on mismatch, NotFound if the id is not live. Counts one
  /// physical read on devices that actually fetch the payload; caching
  /// decorators must bypass their cache so the backing copy is what gets
  /// checked. The default just reads the block (implementations verify on
  /// every read).
  virtual Status VerifyBlock(BlockId id) {
    BlockData scratch;
    return ReadBlock(id, &scratch);
  }

  /// Test seam: overwrites the *stored image* of live block `id` with
  /// `data` (zero-padded to block_size()) WITHOUT touching its recorded
  /// checksum — models silent media corruption. Counts no I/O. Decorators
  /// forward to the base device (a caching decorator must also drop its
  /// cached copy so the corruption is observable). Base devices without a
  /// checksum table may return Unimplemented.
  virtual Status CorruptBlockForTesting(BlockId id, const BlockData& data) {
    (void)id;
    (void)data;
    return Status::Unimplemented("device has no corruption seam");
  }

  /// Test seam: reads block `id` skipping checksum verification, so tests
  /// and tooling can inspect a corrupted payload. Counts no I/O.
  virtual Status ReadBlockUnverifiedForTesting(BlockId id, BlockData* out) {
    (void)id;
    (void)out;
    return Status::Unimplemented("device has no unverified read");
  }

  /// Makes every completed block write durable (fsync for file-backed
  /// devices). Purely-in-memory devices are trivially "durable" and keep
  /// the no-op default; decorators must forward. Never counts as I/O in
  /// stats() — the paper's write metric is block writes, not syncs.
  virtual Status Flush() { return Status::OK(); }

  /// Number of live (allocated, not yet freed) blocks.
  virtual uint64_t live_blocks() const = 0;

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

 protected:
  IoStats stats_;
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_BLOCK_DEVICE_H_
