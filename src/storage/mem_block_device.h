#ifndef LSMSSD_STORAGE_MEM_BLOCK_DEVICE_H_
#define LSMSSD_STORAGE_MEM_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/storage/block_device.h"

namespace lsmssd {

/// Memory-backed block device. This is the default experiment substrate:
/// the paper's headline metric (block writes) is accounted identically to a
/// physical SSD, while runs stay laptop-scale and deterministic. Substitutes
/// for the paper's EC2 local-SSD testbed; see DESIGN.md "Substitutions".
///
/// Every block carries an out-of-band CRC32C computed at write time and
/// checked on every read; the checksum lives beside the payload (not inside
/// the 4 KiB image), so record-block layout and all figure outputs are
/// unaffected. A payload mutated behind the device's back (the
/// CorruptBlockForTesting seam, or a fault-injection decorator) makes every
/// subsequent read of that id fail with Status::Corruption.
///
/// Thread-safety: the block map is guarded by an internal mutex, so reads
/// may overlap allocations/frees of other blocks (the background
/// compaction worker relies on this; see BlockDevice).
class MemBlockDevice : public BlockDevice {
 public:
  explicit MemBlockDevice(size_t block_size = kDefaultBlockSize);

  MemBlockDevice(const MemBlockDevice&) = delete;
  MemBlockDevice& operator=(const MemBlockDevice&) = delete;

  size_t block_size() const override { return block_size_; }
  StatusOr<BlockId> WriteNewBlock(const BlockData& data) override;
  Status ReadBlock(BlockId id, BlockData* out) override;
  /// Zero-copy: hands out the resident block image. Freeing the block
  /// later only drops the device's reference; outstanding readers keep
  /// the data alive (blocks are immutable once written).
  StatusOr<std::shared_ptr<const BlockData>> ReadBlockShared(
      BlockId id) override;
  /// Inserts the whole batch under one mutex acquisition (no physical
  /// coalescing to do in memory; syscall counters stay zero).
  Status WriteBlocks(const std::vector<BlockData>& blocks,
                     std::vector<BlockId>* ids) override;
  Status ReadBlocks(const std::vector<BlockId>& ids,
                    std::vector<BlockData>* out) override;
  Status FreeBlock(BlockId id) override;
  Status VerifyBlock(BlockId id) override;
  Status CorruptBlockForTesting(BlockId id, const BlockData& data) override;
  Status ReadBlockUnverifiedForTesting(BlockId id, BlockData* out) override;
  uint64_t live_blocks() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return blocks_.size();
  }

  /// Caps the number of simultaneously-live blocks; further allocations
  /// return ResourceExhausted until blocks are freed or the cap is raised.
  /// 0 (the default) means unlimited. Models a full SSD.
  void set_max_blocks(uint64_t max_blocks) {
    std::lock_guard<std::mutex> lock(mu_);
    max_blocks_ = max_blocks;
  }
  uint64_t max_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_blocks_;
  }

  /// True iff `id` is currently allocated. Test/debug helper.
  bool IsLive(BlockId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocks_.contains(id);
  }

  /// Deep copy of the device's current contents (block ids preserved, I/O
  /// statistics reset). Stands in for a point-in-time device snapshot in
  /// recovery tests and tooling.
  std::unique_ptr<MemBlockDevice> Clone() const;

 private:
  size_t block_size_;
  mutable std::mutex mu_;    // Guards every field below.
  uint64_t max_blocks_ = 0;  // 0 = unlimited
  BlockId next_id_ = 1;      // 0 is never handed out; eases debugging.
  // Shared so ReadBlockShared serves the image without copying; blocks
  // are never mutated after WriteNewBlock.
  std::unordered_map<BlockId, std::shared_ptr<const BlockData>> blocks_;
  // Out-of-band CRC32C per live block, keyed like blocks_.
  std::unordered_map<BlockId, uint32_t> crcs_;
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_MEM_BLOCK_DEVICE_H_
