#ifndef LSMSSD_STORAGE_MEM_BLOCK_DEVICE_H_
#define LSMSSD_STORAGE_MEM_BLOCK_DEVICE_H_

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/storage/block_device.h"

namespace lsmssd {

/// Memory-backed block device. This is the default experiment substrate:
/// the paper's headline metric (block writes) is accounted identically to a
/// physical SSD, while runs stay laptop-scale and deterministic. Substitutes
/// for the paper's EC2 local-SSD testbed; see DESIGN.md "Substitutions".
class MemBlockDevice : public BlockDevice {
 public:
  explicit MemBlockDevice(size_t block_size = kDefaultBlockSize);

  MemBlockDevice(const MemBlockDevice&) = delete;
  MemBlockDevice& operator=(const MemBlockDevice&) = delete;

  size_t block_size() const override { return block_size_; }
  StatusOr<BlockId> WriteNewBlock(const BlockData& data) override;
  Status ReadBlock(BlockId id, BlockData* out) override;
  /// Zero-copy: hands out the resident block image. Freeing the block
  /// later only drops the device's reference; outstanding readers keep
  /// the data alive (blocks are immutable once written).
  StatusOr<std::shared_ptr<const BlockData>> ReadBlockShared(
      BlockId id) override;
  Status FreeBlock(BlockId id) override;
  uint64_t live_blocks() const override { return blocks_.size(); }

  /// True iff `id` is currently allocated. Test/debug helper.
  bool IsLive(BlockId id) const { return blocks_.contains(id); }

  /// Deep copy of the device's current contents (block ids preserved, I/O
  /// statistics reset). Stands in for a point-in-time device snapshot in
  /// recovery tests and tooling.
  std::unique_ptr<MemBlockDevice> Clone() const;

 private:
  size_t block_size_;
  BlockId next_id_ = 1;  // 0 is never handed out; eases debugging.
  // Shared so ReadBlockShared serves the image without copying; blocks
  // are never mutated after WriteNewBlock.
  std::unordered_map<BlockId, std::shared_ptr<const BlockData>> blocks_;
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_MEM_BLOCK_DEVICE_H_
