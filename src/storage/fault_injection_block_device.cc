#include "src/storage/fault_injection_block_device.h"

#include <string>

namespace lsmssd {

void FaultInjectionBlockDevice::ApplySilentFault(BlockId id,
                                                 const BlockData& data) {
  if (silent_mode_ == SilentMode::kNone) return;
  if (silent_countdown_ > 0) {
    --silent_countdown_;
    if (silent_mode_ == SilentMode::kStaleRead) prev_payload_ = data;
    return;
  }
  const SilentMode mode = silent_mode_;
  silent_mode_ = SilentMode::kNone;
  silent_fault_fired_ = true;
  switch (mode) {
    case SilentMode::kBitFlip: {
      BlockData image;
      if (!base_->ReadBlockUnverifiedForTesting(id, &image).ok()) return;
      const uint32_t bit =
          image.empty() ? 0 : bit_index_ % (image.size() * 8);
      image[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      (void)base_->CorruptBlockForTesting(id, image);
      last_corrupted_block_ = id;
      break;
    }
    case SilentMode::kMisdirectedWrite: {
      // The payload also lands on the victim's slot; the victim's
      // checksum now describes bytes that are no longer there.
      (void)base_->CorruptBlockForTesting(victim_, data);
      last_corrupted_block_ = victim_;
      break;
    }
    case SilentMode::kStaleRead: {
      // The device "acknowledged" the write but never destaged it: the
      // slot still holds whatever the previous write carried.
      (void)base_->CorruptBlockForTesting(id, prev_payload_);
      last_corrupted_block_ = id;
      break;
    }
    case SilentMode::kNone:
      break;
  }
}

StatusOr<BlockId> FaultInjectionBlockDevice::WriteNewBlock(
    const BlockData& data) {
  if (tripped()) return Dead();
  if (injector_ != nullptr && injector_->Step()) {
    // Crash mid-write: a prefix of the payload lands on the device (a
    // torn block in a slot no manifest references), the caller never
    // learns the id, and the process dies.
    BlockData torn(data.begin(), data.begin() + data.size() / 2);
    (void)base_->WriteNewBlock(torn);
    return Status::IoError("injected fault: torn block write");
  }
  auto id_or = base_->WriteNewBlock(data);
  if (id_or.ok()) ApplySilentFault(id_or.value(), data);
  return id_or;
}

Status FaultInjectionBlockDevice::WriteBlocks(
    const std::vector<BlockData>& blocks, std::vector<BlockId>* ids) {
  if (tripped()) return Dead();
  if (injector_ == nullptr && silent_mode_ == SilentMode::kNone) {
    return base_->WriteBlocks(blocks, ids);
  }
  // Faults armed: each block write must be a distinct injector step /
  // silent-fault tick, exactly as if the caller had looped WriteNewBlock.
  std::vector<BlockId> fresh;
  fresh.reserve(blocks.size());
  for (const BlockData& data : blocks) {
    StatusOr<BlockId> id = WriteNewBlock(data);
    if (!id.ok()) {
      // All-or-nothing: reclaim the prefix. After a crash step the base
      // frees still work (only this wrapper plays dead), and no manifest
      // references these ids, so recovery cannot observe them either way.
      for (auto it = fresh.rbegin(); it != fresh.rend(); ++it) {
        (void)base_->FreeBlock(*it);
      }
      return id.status();
    }
    fresh.push_back(*id);
  }
  ids->insert(ids->end(), fresh.begin(), fresh.end());
  return Status::OK();
}

Status FaultInjectionBlockDevice::ReadBlocks(const std::vector<BlockId>& ids,
                                             std::vector<BlockData>* out) {
  if (tripped()) return Dead();
  if (transient_read_errors_ == 0) return base_->ReadBlocks(ids, out);
  out->resize(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    LSMSSD_RETURN_IF_ERROR(ReadBlock(ids[i], &(*out)[i]));
  }
  return Status::OK();
}

Status FaultInjectionBlockDevice::ReadBlock(BlockId id, BlockData* out) {
  if (tripped()) return Dead();
  if (transient_read_errors_ > 0) {
    --transient_read_errors_;
    return Status::IoError("injected fault: transient read error on block " +
                           std::to_string(id));
  }
  return base_->ReadBlock(id, out);
}

StatusOr<std::shared_ptr<const BlockData>>
FaultInjectionBlockDevice::ReadBlockShared(BlockId id) {
  if (tripped()) return Dead();
  if (transient_read_errors_ > 0) {
    --transient_read_errors_;
    return Status::IoError("injected fault: transient read error on block " +
                           std::to_string(id));
  }
  return base_->ReadBlockShared(id);
}

Status FaultInjectionBlockDevice::FreeBlock(BlockId id) {
  // Frees touch only in-memory allocator state (no durable step), but a
  // dead process frees nothing.
  if (tripped()) return Dead();
  return base_->FreeBlock(id);
}

Status FaultInjectionBlockDevice::VerifyBlock(BlockId id) {
  if (tripped()) return Dead();
  return base_->VerifyBlock(id);
}

Status FaultInjectionBlockDevice::Flush() {
  if (tripped()) return Dead();
  if (injector_ != nullptr && injector_->Step()) {
    return Status::IoError("injected fault: device flush");
  }
  return base_->Flush();
}

}  // namespace lsmssd
