#include "src/storage/fault_injection_block_device.h"

namespace lsmssd {

StatusOr<BlockId> FaultInjectionBlockDevice::WriteNewBlock(
    const BlockData& data) {
  if (injector_->tripped()) return Dead();
  if (injector_->Step()) {
    // Crash mid-write: a prefix of the payload lands on the device (a
    // torn block in a slot no manifest references), the caller never
    // learns the id, and the process dies.
    BlockData torn(data.begin(), data.begin() + data.size() / 2);
    (void)base_->WriteNewBlock(torn);
    return Status::IoError("injected fault: torn block write");
  }
  return base_->WriteNewBlock(data);
}

Status FaultInjectionBlockDevice::ReadBlock(BlockId id, BlockData* out) {
  if (injector_->tripped()) return Dead();
  return base_->ReadBlock(id, out);
}

StatusOr<std::shared_ptr<const BlockData>>
FaultInjectionBlockDevice::ReadBlockShared(BlockId id) {
  if (injector_->tripped()) return Dead();
  return base_->ReadBlockShared(id);
}

Status FaultInjectionBlockDevice::FreeBlock(BlockId id) {
  // Frees touch only in-memory allocator state (no durable step), but a
  // dead process frees nothing.
  if (injector_->tripped()) return Dead();
  return base_->FreeBlock(id);
}

Status FaultInjectionBlockDevice::Flush() {
  if (injector_->tripped()) return Dead();
  if (injector_->Step()) {
    return Status::IoError("injected fault: device flush");
  }
  return base_->Flush();
}

}  // namespace lsmssd
