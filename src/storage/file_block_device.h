#ifndef LSMSSD_STORAGE_FILE_BLOCK_DEVICE_H_
#define LSMSSD_STORAGE_FILE_BLOCK_DEVICE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/storage/block_device.h"

namespace lsmssd {

/// File-backed block device using positional unbuffered I/O, optionally
/// with O_SYNC (approximating the paper's ext4 + O_DIRECT|O_SYNC setup).
/// Blocks are slots in one backing file managed by a free list. Used by the
/// wall-clock experiment (Figure 7) and by durability-minded examples; the
/// write-count experiments use MemBlockDevice, which accounts identically.
class FileBlockDevice : public BlockDevice {
 public:
  struct FileOptions {
    size_t block_size = kDefaultBlockSize;
    bool use_osync = false;       ///< Open with O_SYNC.
    bool remove_on_close = true;  ///< Unlink the backing file in dtor.
    /// Truncate on open (fresh device). Set false together with
    /// remove_on_close=false to reopen a persisted device; then declare
    /// the live blocks with RestoreLive() (e.g. from a Manifest).
    bool truncate = true;
  };

  /// Factory; fails if the backing file cannot be created/opened.
  static StatusOr<std::unique_ptr<FileBlockDevice>> Open(
      const std::string& path, const FileOptions& options);

  ~FileBlockDevice() override;

  FileBlockDevice(const FileBlockDevice&) = delete;
  FileBlockDevice& operator=(const FileBlockDevice&) = delete;

  size_t block_size() const override { return options_.block_size; }
  StatusOr<BlockId> WriteNewBlock(const BlockData& data) override;
  Status ReadBlock(BlockId id, BlockData* out) override;
  Status FreeBlock(BlockId id) override;
  /// fsyncs the backing file (no-op under O_SYNC, where every write
  /// already is durable).
  Status Flush() override;
  uint64_t live_blocks() const override { return live_.size(); }

  const std::string& path() const { return path_; }

  /// Declares the set of live blocks after reopening a persisted file
  /// (truncate=false). Unlisted slots below the maximum become free. Must
  /// be called before any I/O; fails if blocks were already allocated.
  Status RestoreLive(const std::vector<BlockId>& live_blocks);

 private:
  FileBlockDevice(std::string path, FileOptions options, int fd);

  std::string path_;
  FileOptions options_;
  int fd_;
  uint64_t next_slot_ = 1;  // Slot 0 unused, as in MemBlockDevice.
  std::vector<BlockId> free_slots_;
  std::unordered_set<BlockId> live_;
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_FILE_BLOCK_DEVICE_H_
