#ifndef LSMSSD_STORAGE_FILE_BLOCK_DEVICE_H_
#define LSMSSD_STORAGE_FILE_BLOCK_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/storage/block_device.h"

namespace lsmssd {

/// File-backed block device using positional unbuffered I/O, optionally
/// with O_SYNC (approximating the paper's ext4 + O_DIRECT|O_SYNC setup).
/// Blocks are slots in one backing file managed by a free list. Used by the
/// wall-clock experiment (Figure 7) and by durability-minded examples; the
/// write-count experiments use MemBlockDevice, which accounts identically.
///
/// Integrity: every block's CRC32C is kept out-of-band in a sidecar file
/// (SidecarPath(path), e.g. blocks.dev -> blocks.crc) as a 4-byte
/// little-endian entry at offset slot*4, mirrored in memory for reads.
/// The sidecar shares the device's durability discipline — written through
/// on allocation, fsynced by Flush() (or O_SYNC) — so a checkpoint that
/// flushes the device before publishing its manifest makes both files
/// consistent for every manifest-live block. Every read verifies and
/// returns Status::Corruption naming the block id on mismatch.
///
/// Resilience: all syscalls retry EINTR and continue short transfers;
/// ENOSPC/EDQUOT map to Status::ResourceExhausted; reads additionally make
/// a bounded number of attempts so transient media errors do not surface.
///
/// Batching: WriteBlocks allocates the same set of slots repeated
/// WriteNewBlock calls would (free-list LIFO, then file tail), assigns
/// them to the batch in ascending order so slots freed together re-form
/// contiguous runs, and coalesces those runs into single pwritev calls
/// with one packed sidecar pwrite per run — same occupied layout, same
/// block-write counts, fewer syscalls. ReadBlocks likewise coalesces consecutive live slots into
/// preadv calls and verifies each block's CRC individually, falling back
/// to the retrying per-block path if a vectored read fails.
///
/// Thread-safety: allocation bookkeeping (slot free list, live set, CRC
/// mirror, caps, fault seams) is guarded by an internal mutex; payload
/// syscalls run outside it. Concurrent reads, and mutations of distinct
/// blocks concurrent with reads, are safe (see BlockDevice); the device
/// assumes a single mutating thread at a time, which Db guarantees.
class FileBlockDevice : public BlockDevice {
 public:
  struct FileOptions {
    size_t block_size = kDefaultBlockSize;
    bool use_osync = false;       ///< Open with O_SYNC.
    bool remove_on_close = true;  ///< Unlink the backing file in dtor.
    /// Truncate on open (fresh device). Set false together with
    /// remove_on_close=false to reopen a persisted device; then declare
    /// the live blocks with RestoreLive() (e.g. from a Manifest).
    bool truncate = true;
    /// Maximum simultaneously-live blocks; 0 = unlimited. Allocation past
    /// the cap returns ResourceExhausted. Models a full SSD.
    uint64_t max_blocks = 0;
  };

  /// Path of the checksum sidecar for a device at `path`: a trailing
  /// ".dev" is replaced by ".crc", otherwise ".crc" is appended.
  static std::string SidecarPath(const std::string& path);

  /// Factory; fails if the backing file or its sidecar cannot be
  /// created/opened (or, reopening, if the sidecar is unreadable).
  static StatusOr<std::unique_ptr<FileBlockDevice>> Open(
      const std::string& path, const FileOptions& options);

  ~FileBlockDevice() override;

  FileBlockDevice(const FileBlockDevice&) = delete;
  FileBlockDevice& operator=(const FileBlockDevice&) = delete;

  size_t block_size() const override { return options_.block_size; }
  StatusOr<BlockId> WriteNewBlock(const BlockData& data) override;
  Status ReadBlock(BlockId id, BlockData* out) override;
  Status WriteBlocks(const std::vector<BlockData>& blocks,
                     std::vector<BlockId>* ids) override;
  Status ReadBlocks(const std::vector<BlockId>& ids,
                    std::vector<BlockData>* out) override;
  Status FreeBlock(BlockId id) override;
  Status VerifyBlock(BlockId id) override;
  Status CorruptBlockForTesting(BlockId id, const BlockData& data) override;
  Status ReadBlockUnverifiedForTesting(BlockId id, BlockData* out) override;
  /// fsyncs the backing file and the checksum sidecar (no-op under O_SYNC,
  /// where every write already is durable).
  Status Flush() override;
  uint64_t live_blocks() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return live_.size();
  }

  const std::string& path() const { return path_; }

  /// Raises (or clears, with 0) the live-block cap at runtime.
  void set_max_blocks(uint64_t max_blocks) {
    std::lock_guard<std::mutex> lock(mu_);
    options_.max_blocks = max_blocks;
  }
  uint64_t max_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return options_.max_blocks;
  }

  /// Declares the set of live blocks after reopening a persisted file
  /// (truncate=false). Unlisted slots below the maximum become free. Must
  /// be called before any I/O; fails if blocks were already allocated, and
  /// reports Corruption if the sidecar lacks a checksum for a live block.
  Status RestoreLive(const std::vector<BlockId>& live_blocks);

  /// Test seam: the next `n` data-file reads fail with a transient I/O
  /// error before reaching the file. Exercises the bounded-retry path.
  void InjectReadFaultsForTesting(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    inject_read_faults_ = n;
  }

  /// Test seam: the next data-file write fails as if the OS returned
  /// `err` (e.g. ENOSPC). Exercises typed error mapping.
  void InjectWriteFaultForTesting(int err) {
    std::lock_guard<std::mutex> lock(mu_);
    inject_write_errno_ = err;
  }

  /// Number of read attempts that were retried after a transient failure.
  uint64_t read_retries() const {
    return read_retries_.load(std::memory_order_relaxed);
  }

 private:
  FileBlockDevice(std::string path, FileOptions options, int fd, int crc_fd);

  /// One pread attempt of block `id` into `out`, verified against
  /// `expected_crc` when `verify`; honors the transient-fault seam.
  Status ReadAttempt(BlockId id, BlockData* out, bool verify,
                     uint32_t expected_crc);
  /// Reads a live block whose liveness and expected checksum were already
  /// snapshotted under the mutex: bounded retries around ReadAttempt.
  Status ReadLiveBlock(BlockId id, BlockData* out, uint32_t expected_crc);
  /// Writes the checksum entry for `slot` to the sidecar file (no mirror
  /// update; callers update crcs_ under the mutex once the batch lands).
  Status WriteCrcFile(BlockId slot, uint32_t crc);

  std::string path_;
  std::string crc_path_;
  FileOptions options_;
  int fd_;
  int crc_fd_;

  mutable std::mutex mu_;  // Guards everything below plus options_.max_blocks.
  uint64_t next_slot_ = 1;  // Slot 0 unused, as in MemBlockDevice.
  std::vector<BlockId> free_slots_;
  std::unordered_set<BlockId> live_;
  // Out-of-band CRC32C per slot (index = slot id); mirrors the sidecar.
  std::vector<uint32_t> crcs_;
  int inject_read_faults_ = 0;
  int inject_write_errno_ = 0;

  std::atomic<uint64_t> read_retries_{0};
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_FILE_BLOCK_DEVICE_H_
