#include "src/storage/mem_block_device.h"

#include <string>

#include "src/util/crc32c.h"
#include "src/util/logging.h"

namespace lsmssd {

MemBlockDevice::MemBlockDevice(size_t block_size) : block_size_(block_size) {
  LSMSSD_CHECK_GT(block_size, 0u);
}

StatusOr<BlockId> MemBlockDevice::WriteNewBlock(const BlockData& data) {
  if (data.size() > block_size_) {
    return Status::InvalidArgument("block payload larger than block size");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (max_blocks_ != 0 && blocks_.size() >= max_blocks_) {
    return Status::ResourceExhausted(
        "device full: " + std::to_string(blocks_.size()) + " of " +
        std::to_string(max_blocks_) + " blocks live");
  }
  BlockData stored = data;
  stored.resize(block_size_, 0);
  const BlockId id = next_id_++;
  crcs_.emplace(id, crc32c::Value(stored.data(), stored.size()));
  blocks_.emplace(id, std::make_shared<const BlockData>(std::move(stored)));
  stats_.RecordAllocate();
  stats_.RecordWrite();
  return id;
}

Status MemBlockDevice::ReadBlock(BlockId id, BlockData* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id) + " not allocated");
  }
  stats_.RecordRead();
  const BlockData& stored = *it->second;
  if (crc32c::Value(stored.data(), stored.size()) != crcs_.at(id)) {
    return Status::Corruption("checksum mismatch on block " +
                              std::to_string(id));
  }
  *out = stored;
  return Status::OK();
}

StatusOr<std::shared_ptr<const BlockData>> MemBlockDevice::ReadBlockShared(
    BlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id) + " not allocated");
  }
  stats_.RecordRead();
  const BlockData& stored = *it->second;
  if (crc32c::Value(stored.data(), stored.size()) != crcs_.at(id)) {
    return Status::Corruption("checksum mismatch on block " +
                              std::to_string(id));
  }
  return it->second;
}

Status MemBlockDevice::VerifyBlock(BlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id) + " not allocated");
  }
  stats_.RecordRead();
  const BlockData& stored = *it->second;
  if (crc32c::Value(stored.data(), stored.size()) != crcs_.at(id)) {
    return Status::Corruption("checksum mismatch on block " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status MemBlockDevice::CorruptBlockForTesting(BlockId id,
                                              const BlockData& data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id) + " not allocated");
  }
  if (data.size() > block_size_) {
    return Status::InvalidArgument("block payload larger than block size");
  }
  BlockData stored = data;
  stored.resize(block_size_, 0);
  // Replace the image only; crcs_ keeps the checksum of the original write,
  // exactly as silent media corruption would.
  it->second = std::make_shared<const BlockData>(std::move(stored));
  return Status::OK();
}

Status MemBlockDevice::ReadBlockUnverifiedForTesting(BlockId id,
                                                     BlockData* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id) + " not allocated");
  }
  *out = *it->second;
  return Status::OK();
}

std::unique_ptr<MemBlockDevice> MemBlockDevice::Clone() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto clone = std::make_unique<MemBlockDevice>(block_size_);
  clone->next_id_ = next_id_;
  clone->max_blocks_ = max_blocks_;
  clone->blocks_ = blocks_;
  clone->crcs_ = crcs_;
  return clone;
}

Status MemBlockDevice::FreeBlock(BlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("free of unallocated block " +
                            std::to_string(id));
  }
  blocks_.erase(it);
  crcs_.erase(id);
  stats_.RecordFree();
  return Status::OK();
}

Status MemBlockDevice::WriteBlocks(const std::vector<BlockData>& blocks,
                                   std::vector<BlockId>* ids) {
  for (const BlockData& data : blocks) {
    if (data.size() > block_size_) {
      return Status::InvalidArgument("block payload larger than block size");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (max_blocks_ != 0 && blocks_.size() + blocks.size() > max_blocks_) {
    return Status::ResourceExhausted(
        "device full: " + std::to_string(blocks_.size()) + " of " +
        std::to_string(max_blocks_) + " blocks live, batch of " +
        std::to_string(blocks.size()) + " requested");
  }
  ids->reserve(ids->size() + blocks.size());
  for (const BlockData& data : blocks) {
    BlockData stored = data;
    stored.resize(block_size_, 0);
    const BlockId id = next_id_++;
    crcs_.emplace(id, crc32c::Value(stored.data(), stored.size()));
    blocks_.emplace(id, std::make_shared<const BlockData>(std::move(stored)));
    stats_.RecordAllocate();
    stats_.RecordWrite();
    ids->push_back(id);
  }
  if (blocks.size() > 1) stats_.RecordBatchWrite(blocks.size());
  return Status::OK();
}

Status MemBlockDevice::ReadBlocks(const std::vector<BlockId>& ids,
                                  std::vector<BlockData>* out) {
  out->resize(ids.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < ids.size(); ++i) {
    auto it = blocks_.find(ids[i]);
    if (it == blocks_.end()) {
      return Status::NotFound("block " + std::to_string(ids[i]) +
                              " not allocated");
    }
    stats_.RecordRead();
    const BlockData& stored = *it->second;
    if (crc32c::Value(stored.data(), stored.size()) != crcs_.at(ids[i])) {
      return Status::Corruption("checksum mismatch on block " +
                                std::to_string(ids[i]));
    }
    (*out)[i] = stored;
  }
  if (ids.size() > 1) stats_.RecordBatchRead(ids.size());
  return Status::OK();
}

}  // namespace lsmssd
