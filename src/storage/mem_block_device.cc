#include "src/storage/mem_block_device.h"

#include <string>

#include "src/util/logging.h"

namespace lsmssd {

MemBlockDevice::MemBlockDevice(size_t block_size) : block_size_(block_size) {
  LSMSSD_CHECK_GT(block_size, 0u);
}

StatusOr<BlockId> MemBlockDevice::WriteNewBlock(const BlockData& data) {
  if (data.size() > block_size_) {
    return Status::InvalidArgument("block payload larger than block size");
  }
  BlockData stored = data;
  stored.resize(block_size_, 0);
  const BlockId id = next_id_++;
  blocks_.emplace(id, std::make_shared<const BlockData>(std::move(stored)));
  stats_.RecordAllocate();
  stats_.RecordWrite();
  return id;
}

Status MemBlockDevice::ReadBlock(BlockId id, BlockData* out) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id) + " not allocated");
  }
  *out = *it->second;
  stats_.RecordRead();
  return Status::OK();
}

StatusOr<std::shared_ptr<const BlockData>> MemBlockDevice::ReadBlockShared(
    BlockId id) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(id) + " not allocated");
  }
  stats_.RecordRead();
  return it->second;
}

std::unique_ptr<MemBlockDevice> MemBlockDevice::Clone() const {
  auto clone = std::make_unique<MemBlockDevice>(block_size_);
  clone->next_id_ = next_id_;
  clone->blocks_ = blocks_;
  return clone;
}

Status MemBlockDevice::FreeBlock(BlockId id) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("free of unallocated block " +
                            std::to_string(id));
  }
  blocks_.erase(it);
  stats_.RecordFree();
  return Status::OK();
}

}  // namespace lsmssd
