#include "src/storage/vlog_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/crc32c.h"

namespace lsmssd {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// crc32c over (key bytes || len bytes || value), matching EncodeEntry.
uint32_t EntryCrc(Key key, uint32_t len, std::string_view value) {
  unsigned char hdr[12];
  for (int i = 0; i < 8; ++i) hdr[i] = static_cast<unsigned char>(key >> (8 * i));
  for (int i = 0; i < 4; ++i) {
    hdr[8 + i] = static_cast<unsigned char>(len >> (8 * i));
  }
  uint32_t crc = crc32c::Value(hdr, sizeof(hdr));
  return crc32c::Extend(crc, reinterpret_cast<const uint8_t*>(value.data()),
                        value.size());
}

}  // namespace

StatusOr<std::unique_ptr<PosixVlogFile>> PosixVlogFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open vlog " + path);
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Errno("lseek vlog " + path);
  }
  return std::unique_ptr<PosixVlogFile>(
      new PosixVlogFile(path, fd, static_cast<uint64_t>(end)));
}

PosixVlogFile::~PosixVlogFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PosixVlogFile::Append(std::string_view data) {
  const uint64_t end = size_.load(std::memory_order_relaxed);
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n =
        ::pwrite(fd_, data.data() + done, data.size() - done,
                 static_cast<off_t>(end + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite vlog " + path_);
    }
    done += static_cast<size_t>(n);
  }
  size_.store(end + data.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status PosixVlogFile::Sync() {
  if (::fsync(fd_) != 0) return Errno("fsync vlog " + path_);
  return Status::OK();
}

Status PosixVlogFile::ReadAt(uint64_t offset, size_t n, std::string* out) {
  out->resize(n);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd_, out->data() + done, n - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("pread vlog " + path_);
    }
    if (r == 0) {
      return Status::IoError("short read past end of vlog " + path_);
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status PosixVlogFile::Truncate(uint64_t new_size) {
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return Errno("ftruncate vlog " + path_);
  }
  size_.store(new_size, std::memory_order_relaxed);
  return Status::OK();
}

Status FaultInjectionVlogFile::Append(std::string_view data) {
  if (injector_->tripped()) return Dead();
  if (injector_->Step()) {
    // Crash during append: the bytes never left the process.
    return Status::IoError("injected fault: vlog append");
  }
  std::lock_guard<std::mutex> lk(mu_);
  buffer_.append(data);
  return Status::OK();
}

Status FaultInjectionVlogFile::Sync() {
  if (injector_->tripped()) return Dead();
  std::lock_guard<std::mutex> lk(mu_);
  if (injector_->Step()) {
    // Crash during sync: a prefix of the unsynced bytes reaches the file
    // (torn final entry), but the fsync never happens.
    if (!buffer_.empty()) {
      (void)base_->Append(
          std::string_view(buffer_).substr(0, buffer_.size() / 2 + 1));
    }
    return Status::IoError("injected fault: torn vlog sync");
  }
  if (!buffer_.empty()) {
    LSMSSD_RETURN_IF_ERROR(base_->Append(buffer_));
    synced_size_ = base_->size();
    buffer_.clear();
  }
  return base_->Sync();
}

Status FaultInjectionVlogFile::ReadAt(uint64_t offset, size_t n,
                                      std::string* out) {
  if (injector_->tripped()) return Dead();
  std::lock_guard<std::mutex> lk(mu_);
  if (offset + n <= synced_size_) {
    return base_->ReadAt(offset, n, out);
  }
  out->clear();
  out->reserve(n);
  if (offset < synced_size_) {
    std::string head;
    LSMSSD_RETURN_IF_ERROR(
        base_->ReadAt(offset, static_cast<size_t>(synced_size_ - offset),
                      &head));
    out->append(head);
  }
  // Remainder from the unsynced buffer ("page cache").
  const uint64_t buf_from = offset > synced_size_ ? offset - synced_size_ : 0;
  const size_t want = n - out->size();
  if (buf_from + want > buffer_.size()) {
    return Status::IoError("short read past end of vlog buffer");
  }
  out->append(buffer_, static_cast<size_t>(buf_from), want);
  return Status::OK();
}

uint64_t FaultInjectionVlogFile::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return synced_size_ + buffer_.size();
}

namespace vlog {

std::string EncodeEntry(Key key, std::string_view value) {
  std::string out;
  out.reserve(kEntryHeaderSize + value.size());
  out.push_back(static_cast<char>(kEntryMagic));
  PutU64(key, &out);
  PutU32(static_cast<uint32_t>(value.size()), &out);
  PutU32(EntryCrc(key, static_cast<uint32_t>(value.size()), value), &out);
  out.append(value);
  return out;
}

Status ReadEntry(VlogFile* file, uint64_t offset, Key expected_key,
                 uint32_t expected_length, std::string* value) {
  auto bad = [&](const std::string& what) {
    return Status::Corruption("vlog entry at offset " +
                              std::to_string(offset) + ": " + what);
  };
  if (offset + kEntryHeaderSize + expected_length > file->size()) {
    return bad("points past end of segment");
  }
  std::string raw;
  LSMSSD_RETURN_IF_ERROR(
      file->ReadAt(offset, kEntryHeaderSize + expected_length, &raw));
  const auto* p = reinterpret_cast<const unsigned char*>(raw.data());
  if (p[0] != kEntryMagic) return bad("bad magic");
  const Key key = GetU64(p + 1);
  if (key != expected_key) return bad("key mismatch");
  const uint32_t len = GetU32(p + 9);
  if (len != expected_length) return bad("length mismatch");
  const std::string_view body(raw.data() + kEntryHeaderSize, len);
  if (GetU32(p + 13) != EntryCrc(key, len, body)) return bad("bad checksum");
  value->assign(body);
  return Status::OK();
}

Status ScanEntries(
    VlogFile* file, uint64_t start,
    const std::function<Status(const EntryInfo&, const std::string&)>& fn,
    uint64_t* intact_end) {
  uint64_t off = start;
  const uint64_t size = file->size();
  *intact_end = off;
  while (off + kEntryHeaderSize <= size) {
    std::string hdr;
    LSMSSD_RETURN_IF_ERROR(file->ReadAt(off, kEntryHeaderSize, &hdr));
    const auto* p = reinterpret_cast<const unsigned char*>(hdr.data());
    if (p[0] != kEntryMagic) break;
    EntryInfo info;
    info.key = GetU64(p + 1);
    info.offset = off;
    info.length = GetU32(p + 9);
    if (off + kEntryHeaderSize + info.length > size) break;
    std::string value;
    LSMSSD_RETURN_IF_ERROR(file->ReadAt(off + kEntryHeaderSize, info.length,
                                        &value));
    if (GetU32(p + 13) != EntryCrc(info.key, info.length, value)) break;
    LSMSSD_RETURN_IF_ERROR(fn(info, value));
    off += kEntryHeaderSize + info.length;
    *intact_end = off;
  }
  return Status::OK();
}

}  // namespace vlog

}  // namespace lsmssd
