#include "src/storage/lru_cache.h"

#include <utility>

#include "src/util/logging.h"

namespace lsmssd {

LruCache::LruCache(size_t capacity_blocks) : capacity_(capacity_blocks) {}

std::shared_ptr<const BlockData> LruCache::Get(BlockId id) {
  // A disabled cache (capacity 0) is "no cache", not a cache that always
  // misses: counting misses here would make IoStats report a 0% hit rate
  // for runs that never had a cache at all.
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(id);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // Move to front.
  return it->second->data;
}

void LruCache::Put(BlockId id, BlockData data) {
  Put(id, std::make_shared<const BlockData>(std::move(data)));
}

void LruCache::Put(BlockId id, std::shared_ptr<const BlockData> data) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(id);
  if (it != map_.end()) {
    it->second->data = std::move(data);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{id, std::move(data), /*pinned=*/false});
  map_.emplace(id, lru_.begin());
  EvictIfNeeded();
}

void LruCache::Erase(BlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(id);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

bool LruCache::Pin(BlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(id);
  if (it == map_.end()) return false;
  it->second->pinned = true;
  return true;
}

void LruCache::Unpin(BlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(id);
  if (it == map_.end()) return;
  it->second->pinned = false;
}

void LruCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  // A cleared cache starts a fresh accounting epoch; stale hit/miss tallies
  // must not leak into post-Clear() hit rates.
  hits_ = 0;
  misses_ = 0;
}

void LruCache::EvictIfNeeded() {
  while (map_.size() > capacity_) {
    // Scan from the back (least recently used) for an unpinned victim.
    auto victim = lru_.end();
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      if (!rit->pinned) {
        victim = std::prev(rit.base());
        break;
      }
    }
    if (victim == lru_.end()) {
      // Everything pinned: give up on shrinking; drop the newest unpinned
      // insert instead (it is at the front and unpinned by construction,
      // unless the caller pinned it already — then we simply stay over
      // capacity until something is unpinned).
      return;
    }
    map_.erase(victim->id);
    lru_.erase(victim);
  }
}

CachedBlockDevice::CachedBlockDevice(BlockDevice* base,
                                     size_t cache_capacity_blocks)
    : base_(base), cache_(cache_capacity_blocks) {
  LSMSSD_CHECK(base != nullptr);
}

StatusOr<BlockId> CachedBlockDevice::WriteNewBlock(const BlockData& data) {
  auto id_or = base_->WriteNewBlock(data);
  if (!id_or.ok()) return id_or;
  stats_.RecordAllocate();
  stats_.RecordWrite();
  cache_.Put(id_or.value(), data);  // Write-through.
  return id_or;
}

Status CachedBlockDevice::WriteBlocks(const std::vector<BlockData>& blocks,
                                      std::vector<BlockId>* ids) {
  const size_t first = ids->size();
  LSMSSD_RETURN_IF_ERROR(base_->WriteBlocks(blocks, ids));
  for (size_t i = 0; i < blocks.size(); ++i) {
    stats_.RecordAllocate();
    stats_.RecordWrite();
    cache_.Put((*ids)[first + i], blocks[i]);  // Write-through.
  }
  if (blocks.size() > 1) stats_.RecordBatchWrite(blocks.size());
  return Status::OK();
}

Status CachedBlockDevice::ReadBlock(BlockId id, BlockData* out) {
  auto data_or = ReadBlockShared(id);
  if (!data_or.ok()) return data_or.status();
  *out = *data_or.value();
  return Status::OK();
}

StatusOr<std::shared_ptr<const BlockData>> CachedBlockDevice::ReadBlockShared(
    BlockId id) {
  if (auto cached = cache_.Get(id)) {
    stats_.RecordCachedRead();
    stats_.RecordCacheHit();
    base_->stats().RecordCachedRead();
    base_->stats().RecordCacheHit();
    return cached;
  }
  auto data_or = base_->ReadBlockShared(id);
  if (!data_or.ok()) return data_or;
  stats_.RecordRead();
  // A disabled cache (capacity 0) reports no hits *and* no misses — the
  // stats say "no cache", not "0% hit rate".
  if (cache_.capacity() > 0) {
    stats_.RecordCacheMiss();
    base_->stats().RecordCacheMiss();
  }
  cache_.Put(id, data_or.value());
  return data_or;
}

Status CachedBlockDevice::ReadBlocks(const std::vector<BlockId>& ids,
                                     std::vector<BlockData>* out) {
  out->resize(ids.size());
  std::vector<BlockId> miss_ids;
  std::vector<size_t> miss_slots;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (auto cached = cache_.Get(ids[i])) {
      (*out)[i] = *cached;
      stats_.RecordCachedRead();
      stats_.RecordCacheHit();
      base_->stats().RecordCachedRead();
      base_->stats().RecordCacheHit();
    } else {
      miss_ids.push_back(ids[i]);
      miss_slots.push_back(i);
    }
  }
  if (!miss_ids.empty()) {
    std::vector<BlockData> fetched;
    LSMSSD_RETURN_IF_ERROR(base_->ReadBlocks(miss_ids, &fetched));
    for (size_t m = 0; m < miss_ids.size(); ++m) {
      stats_.RecordRead();
      if (cache_.capacity() > 0) {
        stats_.RecordCacheMiss();
        base_->stats().RecordCacheMiss();
      }
      cache_.Put(miss_ids[m], fetched[m]);
      (*out)[miss_slots[m]] = std::move(fetched[m]);
    }
    if (miss_ids.size() > 1) stats_.RecordBatchRead(miss_ids.size());
  }
  return Status::OK();
}

Status CachedBlockDevice::VerifyBlock(BlockId id) {
  Status st = base_->VerifyBlock(id);
  stats_.RecordRead();
  return st;
}

Status CachedBlockDevice::CorruptBlockForTesting(BlockId id,
                                                 const BlockData& data) {
  cache_.Erase(id);
  return base_->CorruptBlockForTesting(id, data);
}

Status CachedBlockDevice::FreeBlock(BlockId id) {
  cache_.Erase(id);
  LSMSSD_RETURN_IF_ERROR(base_->FreeBlock(id));
  stats_.RecordFree();
  return Status::OK();
}

}  // namespace lsmssd
