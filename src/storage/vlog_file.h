#ifndef LSMSSD_STORAGE_VLOG_FILE_H_
#define LSMSSD_STORAGE_VLOG_FILE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/format/key_codec.h"
#include "src/storage/fault_injection.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// Append-only value-log segment file (key–value separation, DESIGN.md
/// §11). Unlike the WAL seam, readers need this file *while it is being
/// written* — Get resolves pointers into the head segment — so the seam
/// carries ReadAt and a logical size in addition to Append/Sync. The
/// fault-injection decorator models the page cache (unsynced bytes are
/// process-local) and therefore must serve reads through its buffer,
/// which a raw path-based reader could not.
class VlogFile {
 public:
  virtual ~VlogFile() = default;

  /// Appends `data` at the logical end. Durable only after Sync().
  virtual Status Append(std::string_view data) = 0;

  /// Makes every appended byte durable.
  virtual Status Sync() = 0;

  /// Reads exactly `n` bytes at `offset` into `out` (resized). Sees
  /// appended-but-unsynced bytes. Fails with IoError on a short read.
  virtual Status ReadAt(uint64_t offset, size_t n, std::string* out) = 0;

  /// Logical size: durable bytes plus appended-but-unsynced bytes.
  virtual uint64_t size() const = 0;
};

/// VlogFile over a POSIX fd: pwrite at the tracked end, pread for
/// ReadAt, fsync for Sync. Opens read-write so one object serves the
/// writer and concurrent readers.
class PosixVlogFile : public VlogFile {
 public:
  /// Opens (creating if absent) the segment at `path`, positioned to
  /// append at its current end.
  static StatusOr<std::unique_ptr<PosixVlogFile>> Open(
      const std::string& path);

  ~PosixVlogFile() override;
  PosixVlogFile(const PosixVlogFile&) = delete;
  PosixVlogFile& operator=(const PosixVlogFile&) = delete;

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status ReadAt(uint64_t offset, size_t n, std::string* out) override;
  uint64_t size() const override {
    return size_.load(std::memory_order_relaxed);
  }

  const std::string& path() const { return path_; }

  /// Truncates the file to `new_size` (recovery drops torn/orphan tail
  /// bytes before the writer continues).
  Status Truncate(uint64_t new_size);

 private:
  PosixVlogFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  /// Relaxed atomic: readers only resolve pointers they read from the
  /// tree, and the tree locks already order the append before the read —
  /// the atomic just makes the concurrent unrelated-append benign.
  std::atomic<uint64_t> size_;
};

/// VlogFile decorator mirroring FaultInjectionWalFile: unsynced bytes
/// live in an in-process buffer and reach the base file only on Sync; a
/// crash during Sync tears the log, flushing a prefix of the buffered
/// bytes without the fsync. ReadAt serves the durable range from the
/// base file and the tail from the buffer, so resolving a pointer to a
/// just-written value works exactly as it would against the page cache.
///
/// Injector steps: one per Append and Sync (ReadAt takes none — reads
/// are not durable steps).
///
/// Thread-safe: the group-commit leader syncs off the commit lock while
/// other writers append, and readers resolve concurrently.
class FaultInjectionVlogFile : public VlogFile {
 public:
  /// `injector` must outlive this object.
  FaultInjectionVlogFile(std::unique_ptr<PosixVlogFile> base,
                         FaultInjector* injector)
      : base_(std::move(base)), injector_(injector),
        synced_size_(base_->size()) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status ReadAt(uint64_t offset, size_t n, std::string* out) override;
  uint64_t size() const override;

 private:
  Status Dead() const {
    return Status::IoError("injected fault: vlog file is dead");
  }

  std::unique_ptr<PosixVlogFile> base_;
  FaultInjector* injector_;
  mutable std::mutex mu_;
  uint64_t synced_size_;  ///< Base-file bytes. Guarded by mu_.
  std::string buffer_;    ///< Appended but not yet synced. Guarded by mu_.
};

namespace vlog {

/// Per-entry layout, 17-byte header + value:
///   [u8 magic 0xA7][u64 LE key][u32 LE value_len]
///   [u32 LE crc32c(key bytes || len bytes || value)][value]
/// The checksum covers the key and length so a misdirected or torn
/// entry cannot masquerade as a valid one for a different record.
inline constexpr uint8_t kEntryMagic = 0xA7;
inline constexpr size_t kEntryHeaderSize = 1 + 8 + 4 + 4;

/// One decoded entry header.
struct EntryInfo {
  Key key = 0;
  uint64_t offset = 0;   ///< Of the entry header within its segment.
  uint32_t length = 0;   ///< Value bytes (entry is header + length).
};

/// Serializes one entry (header + value).
std::string EncodeEntry(Key key, std::string_view value);

/// Reads and fully verifies the entry at `offset`: magic, key match,
/// length match, crc. On success `value` holds the payload. Any
/// mismatch is `Corruption` naming the offset; reading past the file
/// end is `Corruption` too (a dangling pointer).
Status ReadEntry(VlogFile* file, uint64_t offset, Key expected_key,
                 uint32_t expected_length, std::string* value);

/// Walks entries from `start` to the logical end, verifying each
/// header and checksum and invoking `fn(info, value)`; a non-OK return
/// from `fn` aborts the scan with that status. `*intact_end` receives
/// the offset one past the last whole verified entry — when it is
/// short of file->size() the remainder is a torn or corrupt tail and
/// the caller decides whether that is legal (head segment after a
/// crash) or Corruption (sealed segment).
Status ScanEntries(
    VlogFile* file, uint64_t start,
    const std::function<Status(const EntryInfo&, const std::string&)>& fn,
    uint64_t* intact_end);

}  // namespace vlog

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_VLOG_FILE_H_
