#ifndef LSMSSD_STORAGE_BLOCK_H_
#define LSMSSD_STORAGE_BLOCK_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace lsmssd {

/// Identifier of one device block. Blocks of an LSM level may live at
/// arbitrary, non-contiguous ids (the paper's relaxed level storage,
/// Section II-B): on SSDs random block reads are cheap, so levels do not
/// need physically sequential leaves.
using BlockId = uint64_t;

inline constexpr BlockId kInvalidBlockId =
    std::numeric_limits<BlockId>::max();

/// Default device block size. Matches the paper's experimental setup (4 KB).
inline constexpr size_t kDefaultBlockSize = 4096;

/// Raw block contents.
using BlockData = std::vector<uint8_t>;

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_BLOCK_H_
