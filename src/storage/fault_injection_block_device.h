#ifndef LSMSSD_STORAGE_FAULT_INJECTION_BLOCK_DEVICE_H_
#define LSMSSD_STORAGE_FAULT_INJECTION_BLOCK_DEVICE_H_

#include <cstdint>

#include "src/storage/block_device.h"
#include "src/storage/fault_injection.h"

namespace lsmssd {

/// BlockDevice decorator that injects storage faults.
///
/// Crash faults (needs a FaultInjector): block writes and flushes are
/// injector steps; when the step fails, WriteNewBlock leaves a *torn*
/// block behind (a prefix of the payload is written to the base device,
/// but the id is never returned to the caller) — recovery must never read
/// it, because no durable manifest references it. Once the injector has
/// tripped, every operation (reads included) fails: the process is
/// considered dead. `injector` may be null when only silent faults are
/// wanted.
///
/// Silent faults (deterministic, one-shot, armed via ArmBitFlip /
/// ArmMisdirectedWrite / ArmStaleRead): the trigger write *succeeds* from
/// the caller's point of view, but the bytes on the base device are
/// damaged behind the out-of-band checksum's back — via the base device's
/// CorruptBlockForTesting seam — so the damage is only discovered when
/// the block is next read or scrubbed. last_corrupted_block() names the
/// damaged id for test assertions.
///
/// Transient faults: ArmTransientReadErrors(n) makes the next n reads
/// fail with IoError and then recover, modeling a bus/ECC hiccup.
/// VerifyBlock is deliberately unaffected (scrub verdicts should reflect
/// media state, not transport weather).
class FaultInjectionBlockDevice : public BlockDevice {
 public:
  /// `base` (and `injector`, if non-null) must outlive this object.
  FaultInjectionBlockDevice(BlockDevice* base, FaultInjector* injector)
      : base_(base), injector_(injector) {}

  size_t block_size() const override { return base_->block_size(); }

  StatusOr<BlockId> WriteNewBlock(const BlockData& data) override;
  /// With an injector attached or a silent fault armed, the batch degrades
  /// to per-block WriteNewBlock calls so every block write is its own
  /// injector step (the crash sweep kills each one) and silent-fault
  /// countdowns tick per block. Otherwise forwards the vectored call.
  Status WriteBlocks(const std::vector<BlockData>& blocks,
                     std::vector<BlockId>* ids) override;
  Status ReadBlock(BlockId id, BlockData* out) override;
  StatusOr<std::shared_ptr<const BlockData>> ReadBlockShared(
      BlockId id) override;
  /// Same degradation rule for transient read errors; forwards otherwise.
  Status ReadBlocks(const std::vector<BlockId>& ids,
                    std::vector<BlockData>* out) override;
  Status FreeBlock(BlockId id) override;
  Status VerifyBlock(BlockId id) override;
  Status CorruptBlockForTesting(BlockId id, const BlockData& data) override {
    return base_->CorruptBlockForTesting(id, data);
  }
  Status ReadBlockUnverifiedForTesting(BlockId id, BlockData* out) override {
    return base_->ReadBlockUnverifiedForTesting(id, out);
  }
  Status Flush() override;
  uint64_t live_blocks() const override { return base_->live_blocks(); }

  BlockDevice* base() { return base_; }

  /// After `after_writes` further successful writes, the next write's
  /// stored image gets bit `bit_index` (mod payload bits) flipped.
  void ArmBitFlip(uint64_t after_writes, uint32_t bit_index) {
    silent_mode_ = SilentMode::kBitFlip;
    silent_countdown_ = after_writes;
    bit_index_ = bit_index;
  }

  /// The trigger write additionally lands on live block `victim`,
  /// clobbering its payload (the classic misdirected write).
  void ArmMisdirectedWrite(uint64_t after_writes, BlockId victim) {
    silent_mode_ = SilentMode::kMisdirectedWrite;
    silent_countdown_ = after_writes;
    victim_ = victim;
  }

  /// The trigger write is dropped by the device: the block's slot keeps
  /// the payload of the *previous* write (zeros if none since arming), so
  /// later reads see stale data.
  void ArmStaleRead(uint64_t after_writes) {
    silent_mode_ = SilentMode::kStaleRead;
    silent_countdown_ = after_writes;
    prev_payload_.clear();
  }

  /// The next `count` ReadBlock/ReadBlockShared calls fail with IoError,
  /// then reads recover.
  void ArmTransientReadErrors(int count) { transient_read_errors_ = count; }

  /// Id damaged by the most recent silent fault (kInvalidBlockId if none
  /// has fired yet).
  BlockId last_corrupted_block() const { return last_corrupted_block_; }

  /// True once an armed silent fault has fired.
  bool silent_fault_fired() const { return silent_fault_fired_; }

 private:
  enum class SilentMode { kNone, kBitFlip, kMisdirectedWrite, kStaleRead };

  Status Dead() const {
    return Status::IoError("injected fault: device is dead");
  }
  bool tripped() const { return injector_ != nullptr && injector_->tripped(); }

  /// Applies the armed silent fault to a just-completed write of `data`
  /// that was assigned `id`. Best-effort: seam failures are swallowed
  /// (silent corruption never surfaces at the write site).
  void ApplySilentFault(BlockId id, const BlockData& data);

  BlockDevice* base_;
  FaultInjector* injector_;

  SilentMode silent_mode_ = SilentMode::kNone;
  uint64_t silent_countdown_ = 0;
  uint32_t bit_index_ = 0;
  BlockId victim_ = kInvalidBlockId;
  BlockData prev_payload_;
  int transient_read_errors_ = 0;
  BlockId last_corrupted_block_ = kInvalidBlockId;
  bool silent_fault_fired_ = false;
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_FAULT_INJECTION_BLOCK_DEVICE_H_
