#ifndef LSMSSD_STORAGE_FAULT_INJECTION_BLOCK_DEVICE_H_
#define LSMSSD_STORAGE_FAULT_INJECTION_BLOCK_DEVICE_H_

#include "src/storage/block_device.h"
#include "src/storage/fault_injection.h"

namespace lsmssd {

/// BlockDevice decorator that kills the write path at an armed crash
/// point. Block writes and flushes are injector steps; when the step
/// fails, WriteNewBlock leaves a *torn* block behind (a prefix of the
/// payload is written to the base device, but the id is never returned
/// to the caller) — recovery must never read it, because no durable
/// manifest references it. Once the injector has tripped, every
/// operation (reads included) fails: the process is considered dead.
class FaultInjectionBlockDevice : public BlockDevice {
 public:
  /// `base` and `injector` must outlive this object.
  FaultInjectionBlockDevice(BlockDevice* base, FaultInjector* injector)
      : base_(base), injector_(injector) {}

  size_t block_size() const override { return base_->block_size(); }

  StatusOr<BlockId> WriteNewBlock(const BlockData& data) override;
  Status ReadBlock(BlockId id, BlockData* out) override;
  StatusOr<std::shared_ptr<const BlockData>> ReadBlockShared(
      BlockId id) override;
  Status FreeBlock(BlockId id) override;
  Status Flush() override;
  uint64_t live_blocks() const override { return base_->live_blocks(); }

  BlockDevice* base() { return base_; }

 private:
  Status Dead() const {
    return Status::IoError("injected fault: device is dead");
  }

  BlockDevice* base_;
  FaultInjector* injector_;
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_FAULT_INJECTION_BLOCK_DEVICE_H_
