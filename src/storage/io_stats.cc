#include "src/storage/io_stats.h"

#include <sstream>

namespace lsmssd {

void IoStats::Reset() {
  block_writes_ = 0;
  block_reads_ = 0;
  cached_reads_ = 0;
  block_frees_ = 0;
  block_allocs_ = 0;
  cache_hits_ = 0;
  cache_misses_ = 0;
  bloom_skips_ = 0;
}

std::string IoStats::ToString() const {
  std::ostringstream out;
  out << "writes=" << block_writes_ << " reads=" << block_reads_
      << " cached_reads=" << cached_reads_ << " allocs=" << block_allocs_
      << " frees=" << block_frees_;
  if (cache_hits_ > 0 || cache_misses_ > 0 || bloom_skips_ > 0) {
    out << " cache_hits=" << cache_hits_ << " cache_misses=" << cache_misses_
        << " bloom_skips=" << bloom_skips_;
  }
  return out.str();
}

}  // namespace lsmssd
