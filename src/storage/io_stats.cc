#include "src/storage/io_stats.h"

#include <sstream>

namespace lsmssd {

void IoStats::CopyFrom(const IoStats& other) {
  block_writes_.store(other.block_writes(), std::memory_order_relaxed);
  block_reads_.store(other.block_reads(), std::memory_order_relaxed);
  cached_reads_.store(other.cached_reads(), std::memory_order_relaxed);
  block_frees_.store(other.block_frees(), std::memory_order_relaxed);
  block_allocs_.store(other.block_allocs(), std::memory_order_relaxed);
  cache_hits_.store(other.cache_hits(), std::memory_order_relaxed);
  cache_misses_.store(other.cache_misses(), std::memory_order_relaxed);
  bloom_skips_.store(other.bloom_skips(), std::memory_order_relaxed);
  write_syscalls_.store(other.write_syscalls(), std::memory_order_relaxed);
  read_syscalls_.store(other.read_syscalls(), std::memory_order_relaxed);
  batch_writes_.store(other.batch_writes(), std::memory_order_relaxed);
  batched_blocks_written_.store(other.batched_blocks_written(),
                                std::memory_order_relaxed);
  batch_reads_.store(other.batch_reads(), std::memory_order_relaxed);
  batched_blocks_read_.store(other.batched_blocks_read(),
                             std::memory_order_relaxed);
}

void IoStats::OverlaySyscallCounters(const IoStats& other) {
  write_syscalls_.store(other.write_syscalls(), std::memory_order_relaxed);
  read_syscalls_.store(other.read_syscalls(), std::memory_order_relaxed);
  batch_writes_.store(other.batch_writes(), std::memory_order_relaxed);
  batched_blocks_written_.store(other.batched_blocks_written(),
                                std::memory_order_relaxed);
  batch_reads_.store(other.batch_reads(), std::memory_order_relaxed);
  batched_blocks_read_.store(other.batched_blocks_read(),
                             std::memory_order_relaxed);
}

void IoStats::MergeFrom(const IoStats& other) {
  auto add = [](std::atomic<uint64_t>& c, uint64_t v) {
    c.fetch_add(v, std::memory_order_relaxed);
  };
  add(block_writes_, other.block_writes());
  add(block_reads_, other.block_reads());
  add(cached_reads_, other.cached_reads());
  add(block_frees_, other.block_frees());
  add(block_allocs_, other.block_allocs());
  add(cache_hits_, other.cache_hits());
  add(cache_misses_, other.cache_misses());
  add(bloom_skips_, other.bloom_skips());
  add(write_syscalls_, other.write_syscalls());
  add(read_syscalls_, other.read_syscalls());
  add(batch_writes_, other.batch_writes());
  add(batched_blocks_written_, other.batched_blocks_written());
  add(batch_reads_, other.batch_reads());
  add(batched_blocks_read_, other.batched_blocks_read());
}

void IoStats::Reset() {
  block_writes_.store(0, std::memory_order_relaxed);
  block_reads_.store(0, std::memory_order_relaxed);
  cached_reads_.store(0, std::memory_order_relaxed);
  block_frees_.store(0, std::memory_order_relaxed);
  block_allocs_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  bloom_skips_.store(0, std::memory_order_relaxed);
  write_syscalls_.store(0, std::memory_order_relaxed);
  read_syscalls_.store(0, std::memory_order_relaxed);
  batch_writes_.store(0, std::memory_order_relaxed);
  batched_blocks_written_.store(0, std::memory_order_relaxed);
  batch_reads_.store(0, std::memory_order_relaxed);
  batched_blocks_read_.store(0, std::memory_order_relaxed);
}

std::string IoStats::ToString() const {
  std::ostringstream out;
  out << "writes=" << block_writes() << " reads=" << block_reads()
      << " cached_reads=" << cached_reads() << " allocs=" << block_allocs()
      << " frees=" << block_frees();
  if (cache_hits() > 0 || cache_misses() > 0 || bloom_skips() > 0) {
    out << " cache_hits=" << cache_hits() << " cache_misses=" << cache_misses()
        << " bloom_skips=" << bloom_skips();
  }
  if (write_syscalls() > 0 || read_syscalls() > 0 || batch_writes() > 0 ||
      batch_reads() > 0) {
    out << " write_syscalls=" << write_syscalls()
        << " read_syscalls=" << read_syscalls()
        << " batch_writes=" << batch_writes()
        << " batched_blocks_written=" << batched_blocks_written()
        << " batch_reads=" << batch_reads()
        << " batched_blocks_read=" << batched_blocks_read();
  }
  return out.str();
}

}  // namespace lsmssd
