#include "src/storage/io_stats.h"

#include <sstream>

namespace lsmssd {

void IoStats::Reset() {
  block_writes_ = 0;
  block_reads_ = 0;
  cached_reads_ = 0;
  block_frees_ = 0;
  block_allocs_ = 0;
}

std::string IoStats::ToString() const {
  std::ostringstream out;
  out << "writes=" << block_writes_ << " reads=" << block_reads_
      << " cached_reads=" << cached_reads_ << " allocs=" << block_allocs_
      << " frees=" << block_frees_;
  return out.str();
}

}  // namespace lsmssd
