#ifndef LSMSSD_STORAGE_LRU_CACHE_H_
#define LSMSSD_STORAGE_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/storage/block.h"
#include "src/storage/block_device.h"

namespace lsmssd {

/// Block-granular LRU cache with pin support. Mirrors the paper's setup
/// (Section V): in addition to the memory-resident L0, an LRU buffer cache
/// holds data blocks; for partial-merge policies the internal index is
/// pinned (we keep leaf directories in memory outright, so pinning here is
/// only exercised by tests and by callers caching hot data blocks).
///
/// Thread-safe: every operation (including a Get, which reorders the LRU
/// list) runs under an internal mutex, so concurrent Db readers holding
/// the tree's shared lock may hit the cache simultaneously.
class LruCache {
 public:
  /// `capacity_blocks` = 0 disables caching entirely.
  explicit LruCache(size_t capacity_blocks);

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached contents of `id`, or nullptr on miss. A hit marks
  /// the entry most-recently-used.
  std::shared_ptr<const BlockData> Get(BlockId id);

  /// Inserts (or refreshes) `id`. Evicts least-recently-used unpinned
  /// entries as needed. If everything is pinned and the cache is full, the
  /// insert is skipped (cache stays consistent, caller unaffected).
  void Put(BlockId id, BlockData data);

  /// Same, but adopts an already-shared block image without copying it
  /// (the zero-copy read path inserts device images directly).
  void Put(BlockId id, std::shared_ptr<const BlockData> data);

  /// Drops `id` if present (pinned or not). Called when a block is freed.
  void Erase(BlockId id);

  /// Pins `id` so it cannot be evicted; no-op if absent. Returns true if
  /// the block was present (and is now pinned).
  bool Pin(BlockId id);
  /// Removes the pin; no-op if absent or unpinned.
  void Unpin(BlockId id);

  /// Drops every entry *and* resets the hit/miss counters: a cleared
  /// cache starts a fresh accounting epoch (hit rates measured across a
  /// Clear() — e.g. across a reopen/restore — would be meaningless).
  void Clear();

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  struct Entry {
    BlockId id;
    std::shared_ptr<const BlockData> data;
    bool pinned = false;
  };
  using EntryList = std::list<Entry>;

  void EvictIfNeeded();  // Requires mu_ held.

  mutable std::mutex mu_;
  const size_t capacity_;
  EntryList lru_;  // Front = most recently used.
  std::unordered_map<BlockId, EntryList::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// BlockDevice decorator that serves reads from an LruCache and forwards
/// everything to the wrapped device. Writes are write-through (every block
/// write reaches the device and its IoStats — the paper's write counts are
/// never absorbed by caching). Cache hits are recorded as cached reads on
/// the underlying device's stats.
class CachedBlockDevice : public BlockDevice {
 public:
  /// `base` must outlive this object.
  CachedBlockDevice(BlockDevice* base, size_t cache_capacity_blocks);

  size_t block_size() const override { return base_->block_size(); }
  StatusOr<BlockId> WriteNewBlock(const BlockData& data) override;
  /// Forwards the whole batch to the base device (so slot coalescing and
  /// batch counters happen there), then write-through caches every block.
  Status WriteBlocks(const std::vector<BlockData>& blocks,
                     std::vector<BlockId>* ids) override;
  Status ReadBlock(BlockId id, BlockData* out) override;
  /// Zero-copy: a hit returns the cached image itself; a miss forwards to
  /// the base device's shared read and caches the resulting image, so the
  /// cache and every outstanding reader share one allocation per block.
  StatusOr<std::shared_ptr<const BlockData>> ReadBlockShared(
      BlockId id) override;
  /// Serves hits from the cache and batch-reads only the misses from the
  /// base device, preserving its coalescing for the cold subset.
  Status ReadBlocks(const std::vector<BlockId>& ids,
                    std::vector<BlockData>* out) override;
  Status FreeBlock(BlockId id) override;
  /// Bypasses the cache: scrubbing must check the backing copy, not a
  /// (necessarily valid) cached image.
  Status VerifyBlock(BlockId id) override;
  /// Forwards the corruption seam and drops any cached copy, so the next
  /// read observes the damaged backing block.
  Status CorruptBlockForTesting(BlockId id, const BlockData& data) override;
  Status ReadBlockUnverifiedForTesting(BlockId id, BlockData* out) override {
    return base_->ReadBlockUnverifiedForTesting(id, out);
  }
  Status Flush() override { return base_->Flush(); }
  uint64_t live_blocks() const override { return base_->live_blocks(); }

  LruCache& cache() { return cache_; }
  BlockDevice* base() { return base_; }

 private:
  BlockDevice* base_;
  LruCache cache_;
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_LRU_CACHE_H_
