#include "src/storage/wal_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lsmssd {

StatusOr<std::unique_ptr<PosixWalFile>> PosixWalFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<PosixWalFile>(new PosixWalFile(path, fd));
}

PosixWalFile::PosixWalFile(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

PosixWalFile::~PosixWalFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PosixWalFile::Append(std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("WAL append to " + path_ + ": " +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PosixWalFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IoError("WAL fsync of " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status PosixWalFile::Truncate() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError("WAL truncate of " + path_ + ": " +
                           std::strerror(errno));
  }
  return Sync();
}

}  // namespace lsmssd
