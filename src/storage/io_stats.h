#ifndef LSMSSD_STORAGE_IO_STATS_H_
#define LSMSSD_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace lsmssd {

/// Precise device-level I/O accounting. The paper's primary performance
/// metric is the number of data-block writes, instrumented in code and
/// independent of the platform (Section V, "Metrics of comparison"); this
/// struct is that instrument. One IoStats instance is owned by each block
/// device; the LSM layer additionally keeps per-level write counters that
/// tests cross-check against these totals.
class IoStats {
 public:
  void RecordWrite() { ++block_writes_; }
  void RecordRead() { ++block_reads_; }
  void RecordCachedRead() { ++cached_reads_; }
  void RecordFree() { ++block_frees_; }
  void RecordAllocate() { ++block_allocs_; }

  uint64_t block_writes() const { return block_writes_; }
  uint64_t block_reads() const { return block_reads_; }
  uint64_t cached_reads() const { return cached_reads_; }
  uint64_t block_frees() const { return block_frees_; }
  uint64_t block_allocs() const { return block_allocs_; }

  void Reset();

  /// "writes=... reads=... cached_reads=... allocs=... frees=..."
  std::string ToString() const;

 private:
  uint64_t block_writes_ = 0;
  uint64_t block_reads_ = 0;
  uint64_t cached_reads_ = 0;
  uint64_t block_frees_ = 0;
  uint64_t block_allocs_ = 0;
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_IO_STATS_H_
