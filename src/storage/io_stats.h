#ifndef LSMSSD_STORAGE_IO_STATS_H_
#define LSMSSD_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace lsmssd {

/// Precise device-level I/O accounting. The paper's primary performance
/// metric is the number of data-block writes, instrumented in code and
/// independent of the platform (Section V, "Metrics of comparison"); this
/// struct is that instrument. One IoStats instance is owned by each block
/// device; the LSM layer additionally keeps per-level write counters that
/// tests cross-check against these totals.
///
/// Beyond the paper's write metric, the read path records where each
/// lookup was answered: a physical block read, a buffer-cache hit, or a
/// Bloom-filter negative that skipped the block entirely. Benches report
/// these to break down read cost; none of them affect write counts.
///
/// Counters are relaxed atomics so concurrent readers (Db::Get under a
/// shared lock) may record reads/hits while a writer merges. Relaxed
/// ordering is sufficient: each counter is an independent monotonic tally,
/// never used to synchronize other memory. Single-threaded counts are
/// bit-identical to the plain-integer implementation.
class IoStats {
 public:
  IoStats() = default;
  /// Copyable (Db::Stats() returns a snapshot by value). The copy is a
  /// per-counter relaxed snapshot, not an atomic snapshot of the whole
  /// struct — fine for statistics.
  IoStats(const IoStats& other) { CopyFrom(other); }
  IoStats& operator=(const IoStats& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  void RecordWrite() { Bump(block_writes_); }
  void RecordRead() { Bump(block_reads_); }
  void RecordCachedRead() { Bump(cached_reads_); }
  void RecordFree() { Bump(block_frees_); }
  void RecordAllocate() { Bump(block_allocs_); }
  void RecordCacheHit() { Bump(cache_hits_); }
  void RecordCacheMiss() { Bump(cache_misses_); }
  void RecordBloomSkip() { Bump(bloom_skips_); }

  /// Syscall/batch accounting for the vectored I/O path. A batch counter
  /// ticks once per WriteBlocks/ReadBlocks call that covered more than one
  /// block; the batched-blocks counters tally the blocks those calls moved.
  /// Syscall counters tick once per physical pwrite/pwritev/pread/preadv a
  /// file-backed device issues for block payloads (CRC sidecar writes ride
  /// along and are counted too). Purely-in-memory devices leave them zero.
  /// None of these touch the paper's block-write metric.
  void RecordWriteSyscall() { Bump(write_syscalls_); }
  void RecordReadSyscall() { Bump(read_syscalls_); }
  void RecordBatchWrite(uint64_t blocks) {
    batch_writes_.fetch_add(1, std::memory_order_relaxed);
    batched_blocks_written_.fetch_add(blocks, std::memory_order_relaxed);
  }
  void RecordBatchRead(uint64_t blocks) {
    batch_reads_.fetch_add(1, std::memory_order_relaxed);
    batched_blocks_read_.fetch_add(blocks, std::memory_order_relaxed);
  }

  uint64_t block_writes() const { return Load(block_writes_); }
  uint64_t block_reads() const { return Load(block_reads_); }
  uint64_t cached_reads() const { return Load(cached_reads_); }
  uint64_t block_frees() const { return Load(block_frees_); }
  uint64_t block_allocs() const { return Load(block_allocs_); }
  uint64_t cache_hits() const { return Load(cache_hits_); }
  uint64_t cache_misses() const { return Load(cache_misses_); }
  uint64_t bloom_skips() const { return Load(bloom_skips_); }
  uint64_t write_syscalls() const { return Load(write_syscalls_); }
  uint64_t read_syscalls() const { return Load(read_syscalls_); }
  uint64_t batch_writes() const { return Load(batch_writes_); }
  uint64_t batched_blocks_written() const {
    return Load(batched_blocks_written_);
  }
  uint64_t batch_reads() const { return Load(batch_reads_); }
  uint64_t batched_blocks_read() const { return Load(batched_blocks_read_); }

  /// Copies `other`'s syscall/batch counters into this snapshot,
  /// overwriting them. Decorator stacks keep one IoStats per layer and
  /// only the file-backed base device issues syscalls, so a snapshot of
  /// the stack's outer view (logical writes/reads/cache) overlays the
  /// base's counters to present one complete account.
  void OverlaySyscallCounters(const IoStats& other);

  /// Adds every counter of `other` into this snapshot. Used by the sharded
  /// Db facade to aggregate per-shard device accounting into one view;
  /// like CopyFrom, the result is a per-counter relaxed sum, not an atomic
  /// snapshot across counters.
  void MergeFrom(const IoStats& other);

  void Reset();

  /// "writes=... reads=... cached_reads=... allocs=... frees=..." plus
  /// "cache_hits=... cache_misses=... bloom_skips=..." when any is
  /// non-zero (devices without a cache keep the paper-era format), plus
  /// "write_syscalls=... read_syscalls=... batch_writes=... ..." when any
  /// syscall/batch counter is non-zero (in-memory devices and single-block
  /// workloads keep the historical format).
  std::string ToString() const;

 private:
  static void Bump(std::atomic<uint64_t>& c) {
    c.fetch_add(1, std::memory_order_relaxed);
  }
  static uint64_t Load(const std::atomic<uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  }
  void CopyFrom(const IoStats& other);

  std::atomic<uint64_t> block_writes_{0};
  std::atomic<uint64_t> block_reads_{0};
  std::atomic<uint64_t> cached_reads_{0};
  std::atomic<uint64_t> block_frees_{0};
  std::atomic<uint64_t> block_allocs_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> bloom_skips_{0};
  std::atomic<uint64_t> write_syscalls_{0};
  std::atomic<uint64_t> read_syscalls_{0};
  std::atomic<uint64_t> batch_writes_{0};
  std::atomic<uint64_t> batched_blocks_written_{0};
  std::atomic<uint64_t> batch_reads_{0};
  std::atomic<uint64_t> batched_blocks_read_{0};
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_IO_STATS_H_
