#ifndef LSMSSD_STORAGE_IO_STATS_H_
#define LSMSSD_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace lsmssd {

/// Precise device-level I/O accounting. The paper's primary performance
/// metric is the number of data-block writes, instrumented in code and
/// independent of the platform (Section V, "Metrics of comparison"); this
/// struct is that instrument. One IoStats instance is owned by each block
/// device; the LSM layer additionally keeps per-level write counters that
/// tests cross-check against these totals.
///
/// Beyond the paper's write metric, the read path records where each
/// lookup was answered: a physical block read, a buffer-cache hit, or a
/// Bloom-filter negative that skipped the block entirely. Benches report
/// these to break down read cost; none of them affect write counts.
class IoStats {
 public:
  void RecordWrite() { ++block_writes_; }
  void RecordRead() { ++block_reads_; }
  void RecordCachedRead() { ++cached_reads_; }
  void RecordFree() { ++block_frees_; }
  void RecordAllocate() { ++block_allocs_; }
  void RecordCacheHit() { ++cache_hits_; }
  void RecordCacheMiss() { ++cache_misses_; }
  void RecordBloomSkip() { ++bloom_skips_; }

  uint64_t block_writes() const { return block_writes_; }
  uint64_t block_reads() const { return block_reads_; }
  uint64_t cached_reads() const { return cached_reads_; }
  uint64_t block_frees() const { return block_frees_; }
  uint64_t block_allocs() const { return block_allocs_; }
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  uint64_t bloom_skips() const { return bloom_skips_; }

  void Reset();

  /// "writes=... reads=... cached_reads=... allocs=... frees=..." plus
  /// "cache_hits=... cache_misses=... bloom_skips=..." when any is
  /// non-zero (devices without a cache keep the paper-era format).
  std::string ToString() const;

 private:
  uint64_t block_writes_ = 0;
  uint64_t block_reads_ = 0;
  uint64_t cached_reads_ = 0;
  uint64_t block_frees_ = 0;
  uint64_t block_allocs_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t bloom_skips_ = 0;
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_IO_STATS_H_
