#ifndef LSMSSD_STORAGE_FAULT_INJECTION_WAL_FILE_H_
#define LSMSSD_STORAGE_FAULT_INJECTION_WAL_FILE_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/storage/fault_injection.h"
#include "src/storage/wal_file.h"

namespace lsmssd {

/// WalFile decorator that models exactly what a crash can do to a log:
/// appended-but-unsynced bytes live in a buffer (the "page cache") and
/// reach the underlying file only on Sync, so dropping this object after
/// a trip loses them — except that a crash *during* Sync tears the log,
/// flushing only a prefix of the buffered bytes without an fsync. WAL
/// recovery must therefore tolerate a torn final entry, and a sweep over
/// crash points exercises every tear.
///
/// Injector steps: one per Append, Sync, and Truncate.
///
/// Thread-safe: a group-commit leader fsyncs with the Db commit lock
/// released, so Sync runs concurrently with other writers' Appends. A
/// real fd tolerates that (write vs. fsync); the simulated page cache
/// needs a mutex around `buffer_`.
class FaultInjectionWalFile : public WalFile {
 public:
  /// `injector` must outlive this object.
  FaultInjectionWalFile(std::unique_ptr<WalFile> base,
                        FaultInjector* injector)
      : base_(std::move(base)), injector_(injector) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Truncate() override;

  /// Bytes appended since the last successful Sync (lost on a crash).
  size_t unsynced_bytes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return buffer_.size();
  }

 private:
  Status Dead() const {
    return Status::IoError("injected fault: WAL file is dead");
  }

  std::unique_ptr<WalFile> base_;
  FaultInjector* injector_;
  mutable std::mutex mu_;
  std::string buffer_;  ///< Appended but not yet synced. Guarded by mu_.
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_FAULT_INJECTION_WAL_FILE_H_
