#include "src/storage/fault_injection_wal_file.h"

namespace lsmssd {

Status FaultInjectionWalFile::Append(std::string_view data) {
  if (injector_->tripped()) return Dead();
  if (injector_->Step()) {
    // Crash during append: the bytes never left the process.
    return Status::IoError("injected fault: WAL append");
  }
  std::lock_guard<std::mutex> lk(mu_);
  buffer_.append(data);
  return Status::OK();
}

Status FaultInjectionWalFile::Sync() {
  if (injector_->tripped()) return Dead();
  std::lock_guard<std::mutex> lk(mu_);
  if (injector_->Step()) {
    // Crash during sync: a prefix of the unsynced bytes reaches the file
    // (torn final entry), but the fsync never happens.
    if (!buffer_.empty()) {
      (void)base_->Append(
          std::string_view(buffer_).substr(0, buffer_.size() / 2 + 1));
    }
    return Status::IoError("injected fault: torn WAL sync");
  }
  if (!buffer_.empty()) {
    LSMSSD_RETURN_IF_ERROR(base_->Append(buffer_));
    buffer_.clear();
  }
  return base_->Sync();
}

Status FaultInjectionWalFile::Truncate() {
  if (injector_->tripped()) return Dead();
  if (injector_->Step()) {
    return Status::IoError("injected fault: WAL truncate");
  }
  std::lock_guard<std::mutex> lk(mu_);
  buffer_.clear();
  return base_->Truncate();
}

}  // namespace lsmssd
