#ifndef LSMSSD_STORAGE_FAULT_INJECTION_H_
#define LSMSSD_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>

namespace lsmssd {

/// Deterministic crash-point clock shared by the fault-injection storage
/// wrappers (FaultInjectionBlockDevice, FaultInjectionWalFile) and the
/// Db checkpoint path. Every durable step — a block write, a device
/// flush, a WAL append/sync/truncate, a manifest tmp-write/rename —
/// calls Step() exactly once. When armed with Arm(k), step number k
/// (0-based) fails, and the injector *trips*: every later step fails
/// too, modeling a process that died at step k and never came back.
///
/// Running a scenario with the injector disarmed counts its total number
/// of steps; a crash-point sweep then re-runs the scenario once per
/// k in [0, steps()), asserting recovery after each.
///
/// The clock is atomic so a Db with a background checkpoint thread can
/// tick it from two threads at once: each step still draws a unique
/// number, exactly one step trips first, and — because a tripped
/// injector fails every later step — both threads observe the "process
/// death" regardless of which one drew the fatal tick. Arm()/Disarm()
/// are *not* concurrency-safe against in-flight Step() calls; the sweep
/// calls them only between runs, when no Db is live.
class FaultInjector {
 public:
  /// Fails step `fail_at_step` and every step after it.
  void Arm(uint64_t fail_at_step) {
    fail_at_.store(fail_at_step, std::memory_order_relaxed);
    tripped_.store(false, std::memory_order_relaxed);
    steps_.store(0, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  /// Stops injecting (used by the post-crash recovery attempt). Keeps the
  /// step counter running.
  void Disarm() {
    armed_.store(false, std::memory_order_release);
    tripped_.store(false, std::memory_order_relaxed);
  }

  /// Advances the clock; returns true if this step must fail.
  bool Step() {
    const uint64_t step = steps_.fetch_add(1, std::memory_order_relaxed);
    if (!armed_.load(std::memory_order_acquire)) return false;
    if (tripped_.load(std::memory_order_relaxed) ||
        step >= fail_at_.load(std::memory_order_relaxed)) {
      tripped_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// True once the armed fault has fired (the "process" is dead).
  bool tripped() const { return tripped_.load(std::memory_order_relaxed); }

  /// Steps observed since construction or the last Arm().
  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> armed_{false};
  std::atomic<bool> tripped_{false};
  std::atomic<uint64_t> fail_at_{0};
  std::atomic<uint64_t> steps_{0};
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_FAULT_INJECTION_H_
