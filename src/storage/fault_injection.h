#ifndef LSMSSD_STORAGE_FAULT_INJECTION_H_
#define LSMSSD_STORAGE_FAULT_INJECTION_H_

#include <cstdint>

namespace lsmssd {

/// Deterministic crash-point clock shared by the fault-injection storage
/// wrappers (FaultInjectionBlockDevice, FaultInjectionWalFile) and the
/// Db checkpoint path. Every durable step — a block write, a device
/// flush, a WAL append/sync/truncate, a manifest tmp-write/rename —
/// calls Step() exactly once. When armed with Arm(k), step number k
/// (0-based) fails, and the injector *trips*: every later step fails
/// too, modeling a process that died at step k and never came back.
///
/// Running a scenario with the injector disarmed counts its total number
/// of steps; a crash-point sweep then re-runs the scenario once per
/// k in [0, steps()), asserting recovery after each.
class FaultInjector {
 public:
  /// Fails step `fail_at_step` and every step after it.
  void Arm(uint64_t fail_at_step) {
    armed_ = true;
    fail_at_ = fail_at_step;
    tripped_ = false;
    steps_ = 0;
  }

  /// Stops injecting (used by the post-crash recovery attempt). Keeps the
  /// step counter running.
  void Disarm() {
    armed_ = false;
    tripped_ = false;
  }

  /// Advances the clock; returns true if this step must fail.
  bool Step() {
    const uint64_t step = steps_++;
    if (!armed_) return false;
    if (tripped_ || step >= fail_at_) {
      tripped_ = true;
      return true;
    }
    return false;
  }

  /// True once the armed fault has fired (the "process" is dead).
  bool tripped() const { return tripped_; }

  /// Steps observed since construction or the last Arm().
  uint64_t steps() const { return steps_; }

 private:
  bool armed_ = false;
  bool tripped_ = false;
  uint64_t fail_at_ = 0;
  uint64_t steps_ = 0;
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_FAULT_INJECTION_H_
