#include "src/storage/file_block_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <string_view>

#include "src/util/crc32c.h"
#include "src/util/logging.h"

namespace lsmssd {

namespace {

// How many times a read is attempted before the error is surfaced. Real
// SSDs see transient bus/ECC hiccups that succeed on retry; persistent
// failures still surface after this bound.
constexpr int kMaxReadAttempts = 3;

// Upper bound on iovec entries per pwritev/preadv call. POSIX guarantees
// at least 16; Linux allows 1024. Batches larger than this are split.
constexpr size_t kMaxIovecs = 1024;

/// Maps the current errno to a typed Status: disk-full conditions become
/// ResourceExhausted (callers turn them into backpressure), everything
/// else is an I/O error.
Status ErrnoStatus(const std::string& what, int err) {
  std::string msg = what + ": " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(std::move(msg));
  }
  return Status::IoError(std::move(msg));
}

/// pwrite that retries EINTR and continues short writes until `n` bytes
/// land. A zero-progress write (possible when the filesystem runs out of
/// space mid-transfer) is reported as ENOSPC rather than looping forever.
Status PwriteFully(int fd, const uint8_t* buf, size_t n, off_t off,
                   const std::string& what) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pwrite(fd, buf + done, n - done, off + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(what, errno);
    }
    if (r == 0) return ErrnoStatus(what + " (no progress)", ENOSPC);
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

/// pread that retries EINTR and continues short reads until `n` bytes
/// arrive. Hitting EOF early means the file is shorter than the slot
/// layout requires — corruption of the backing store, not a syscall error.
Status PreadFully(int fd, uint8_t* buf, size_t n, off_t off,
                  const std::string& what) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, buf + done, n - done, off + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(what, errno);
    }
    if (r == 0) {
      return Status::Corruption(what + ": short read (" +
                                std::to_string(done) + " of " +
                                std::to_string(n) + " bytes)");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

/// pwritev over `iov` that retries EINTR and resumes short writes by
/// advancing past fully-written entries and trimming the partial one.
/// Mutates `iov` on resume (callers pass scratch).
Status PwritevFully(int fd, struct iovec* iov, size_t iovcnt, off_t off,
                    const std::string& what) {
  size_t idx = 0;
  while (idx < iovcnt) {
    ssize_t r = ::pwritev(fd, iov + idx, static_cast<int>(iovcnt - idx), off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(what, errno);
    }
    if (r == 0) return ErrnoStatus(what + " (no progress)", ENOSPC);
    size_t left = static_cast<size_t>(r);
    off += static_cast<off_t>(left);
    while (idx < iovcnt && left >= iov[idx].iov_len) {
      left -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < iovcnt && left > 0) {
      iov[idx].iov_base = static_cast<uint8_t*>(iov[idx].iov_base) + left;
      iov[idx].iov_len -= left;
    }
  }
  return Status::OK();
}

/// preadv counterpart of PwritevFully; an early EOF is Corruption, as in
/// PreadFully.
Status PreadvFully(int fd, struct iovec* iov, size_t iovcnt, off_t off,
                   const std::string& what) {
  size_t idx = 0;
  while (idx < iovcnt) {
    ssize_t r = ::preadv(fd, iov + idx, static_cast<int>(iovcnt - idx), off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(what, errno);
    }
    if (r == 0) return Status::Corruption(what + ": short read");
    size_t left = static_cast<size_t>(r);
    off += static_cast<off_t>(left);
    while (idx < iovcnt && left >= iov[idx].iov_len) {
      left -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < iovcnt && left > 0) {
      iov[idx].iov_base = static_cast<uint8_t*>(iov[idx].iov_base) + left;
      iov[idx].iov_len -= left;
    }
  }
  return Status::OK();
}

void EncodeCrc(uint32_t crc, uint8_t out[4]) {
  out[0] = static_cast<uint8_t>(crc);
  out[1] = static_cast<uint8_t>(crc >> 8);
  out[2] = static_cast<uint8_t>(crc >> 16);
  out[3] = static_cast<uint8_t>(crc >> 24);
}

uint32_t DecodeCrc(const uint8_t in[4]) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

}  // namespace

std::string FileBlockDevice::SidecarPath(const std::string& path) {
  constexpr std::string_view kDevSuffix = ".dev";
  if (path.size() > kDevSuffix.size() &&
      path.compare(path.size() - kDevSuffix.size(), kDevSuffix.size(),
                   kDevSuffix) == 0) {
    return path.substr(0, path.size() - kDevSuffix.size()) + ".crc";
  }
  return path + ".crc";
}

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, const FileOptions& options) {
  if (options.block_size == 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  int flags = O_RDWR | O_CREAT;
  if (options.truncate) flags |= O_TRUNC;
  if (options.use_osync) flags |= O_SYNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoStatus("open " + path, errno);
  const std::string crc_path = SidecarPath(path);
  const int crc_fd = ::open(crc_path.c_str(), flags, 0644);
  if (crc_fd < 0) {
    Status st = ErrnoStatus("open " + crc_path, errno);
    ::close(fd);
    return st;
  }
  auto dev = std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(path, options, fd, crc_fd));
  if (!options.truncate) {
    // Reopening a persisted device: mirror the sidecar into memory.
    struct stat sb;
    if (::fstat(crc_fd, &sb) != 0) {
      return ErrnoStatus("fstat " + crc_path, errno);
    }
    const uint64_t slots = static_cast<uint64_t>(sb.st_size) / 4;
    dev->crcs_.resize(slots, 0);
    if (slots > 0) {
      std::vector<uint8_t> raw(slots * 4);
      LSMSSD_RETURN_IF_ERROR(
          PreadFully(crc_fd, raw.data(), raw.size(), 0, "pread " + crc_path));
      for (uint64_t s = 0; s < slots; ++s) {
        dev->crcs_[s] = DecodeCrc(raw.data() + s * 4);
      }
    }
  }
  return dev;
}

FileBlockDevice::FileBlockDevice(std::string path, FileOptions options,
                                 int fd, int crc_fd)
    : path_(std::move(path)),
      crc_path_(SidecarPath(path_)),
      options_(options),
      fd_(fd),
      crc_fd_(crc_fd) {}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
  if (crc_fd_ >= 0) ::close(crc_fd_);
  if (options_.remove_on_close) {
    ::unlink(path_.c_str());
    ::unlink(crc_path_.c_str());
  }
}

Status FileBlockDevice::WriteCrcFile(BlockId slot, uint32_t crc) {
  uint8_t raw[4];
  EncodeCrc(crc, raw);
  LSMSSD_RETURN_IF_ERROR(PwriteFully(crc_fd_, raw, sizeof(raw),
                                     static_cast<off_t>(slot) * 4,
                                     "pwrite crc for block " +
                                         std::to_string(slot)));
  stats_.RecordWriteSyscall();
  return Status::OK();
}

StatusOr<BlockId> FileBlockDevice::WriteNewBlock(const BlockData& data) {
  if (data.size() > options_.block_size) {
    return Status::InvalidArgument("block payload larger than block size");
  }
  BlockId slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_blocks != 0 && live_.size() >= options_.max_blocks) {
      return Status::ResourceExhausted(
          "device full: " + std::to_string(live_.size()) + " of " +
          std::to_string(options_.max_blocks) + " blocks live");
    }
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = next_slot_++;
    }
    if (inject_write_errno_ != 0) {
      const int err = inject_write_errno_;
      inject_write_errno_ = 0;
      free_slots_.push_back(slot);
      return ErrnoStatus("pwrite block " + std::to_string(slot), err);
    }
  }

  BlockData padded = data;
  padded.resize(options_.block_size, 0);
  const off_t offset =
      static_cast<off_t>(slot) * static_cast<off_t>(options_.block_size);
  const uint32_t crc = crc32c::Value(padded.data(), padded.size());
  Status st = PwriteFully(fd_, padded.data(), padded.size(), offset,
                          "pwrite block " + std::to_string(slot));
  if (st.ok()) {
    stats_.RecordWriteSyscall();
    st = WriteCrcFile(slot, crc);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!st.ok()) {
    // A partial write may have landed; the slot stays free and its bytes
    // are never readable, so the tear is harmless.
    free_slots_.push_back(slot);
    return st;
  }
  if (slot >= crcs_.size()) crcs_.resize(slot + 1, 0);
  crcs_[slot] = crc;
  live_.insert(slot);
  stats_.RecordAllocate();
  stats_.RecordWrite();
  return slot;
}

Status FileBlockDevice::WriteBlocks(const std::vector<BlockData>& blocks,
                                    std::vector<BlockId>* ids) {
  if (blocks.empty()) return Status::OK();
  for (const BlockData& data : blocks) {
    if (data.size() > options_.block_size) {
      return Status::InvalidArgument("block payload larger than block size");
    }
  }

  // Allocate the same SET of slots repeated WriteNewBlock calls would use
  // (free-list LIFO first, then fresh tail slots) — the occupied layout,
  // and therefore what RestoreLive reconstructs, is independent of whether
  // the caller batched. The slots are then assigned to the batch in
  // ascending order: blocks freed together by an earlier merge re-form a
  // contiguous run, which the vectored path below coalesces into single
  // syscalls instead of one pwritev per scattered slot.
  std::vector<BlockId> slots;
  slots.reserve(blocks.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_blocks != 0 &&
        live_.size() + blocks.size() > options_.max_blocks) {
      return Status::ResourceExhausted(
          "device full: " + std::to_string(live_.size()) + " of " +
          std::to_string(options_.max_blocks) + " blocks live, batch of " +
          std::to_string(blocks.size()) + " requested");
    }
    if (inject_write_errno_ != 0) {
      const int err = inject_write_errno_;
      inject_write_errno_ = 0;
      return ErrnoStatus("pwritev batch of " + std::to_string(blocks.size()),
                         err);
    }
    for (size_t i = 0; i < blocks.size(); ++i) {
      if (!free_slots_.empty()) {
        slots.push_back(free_slots_.back());
        free_slots_.pop_back();
      } else {
        slots.push_back(next_slot_++);
      }
    }
  }
  // Pop order is needed to restore the free list verbatim on failure.
  const std::vector<BlockId> pop_order = slots;
  std::sort(slots.begin(), slots.end());

  // Pad payloads, then coalesce runs of consecutive slots into vectored
  // writes: one pwritev for the data file and one packed pwrite for the
  // sidecar (consecutive slots occupy consecutive 4-byte sidecar entries).
  std::vector<BlockData> padded(blocks.begin(), blocks.end());
  std::vector<uint32_t> crcs(blocks.size());
  for (size_t i = 0; i < padded.size(); ++i) {
    padded[i].resize(options_.block_size, 0);
    crcs[i] = crc32c::Value(padded[i].data(), padded[i].size());
  }
  Status st;
  for (size_t begin = 0; begin < slots.size() && st.ok();) {
    size_t end = begin + 1;
    while (end < slots.size() && end - begin < kMaxIovecs &&
           slots[end] == slots[end - 1] + 1) {
      ++end;
    }
    std::vector<struct iovec> iov(end - begin);
    for (size_t i = begin; i < end; ++i) {
      iov[i - begin].iov_base = padded[i].data();
      iov[i - begin].iov_len = padded[i].size();
    }
    const off_t offset = static_cast<off_t>(slots[begin]) *
                         static_cast<off_t>(options_.block_size);
    st = PwritevFully(fd_, iov.data(), iov.size(), offset,
                      "pwritev blocks " + std::to_string(slots[begin]) + ".." +
                          std::to_string(slots[end - 1]));
    if (st.ok()) {
      stats_.RecordWriteSyscall();
      std::vector<uint8_t> packed((end - begin) * 4);
      for (size_t i = begin; i < end; ++i) {
        EncodeCrc(crcs[i], packed.data() + (i - begin) * 4);
      }
      st = PwriteFully(crc_fd_, packed.data(), packed.size(),
                       static_cast<off_t>(slots[begin]) * 4,
                       "pwrite crc run at block " +
                           std::to_string(slots[begin]));
      if (st.ok()) stats_.RecordWriteSyscall();
    }
    begin = end;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!st.ok()) {
    // All-or-nothing: every allocated slot goes back to the free list (in
    // reverse pop order, restoring the LIFO state) and nothing is counted.
    // Partially landed bytes sit in free slots and are never readable.
    for (auto it = pop_order.rbegin(); it != pop_order.rend(); ++it) {
      free_slots_.push_back(*it);
    }
    return st;
  }
  const BlockId max_slot = *std::max_element(slots.begin(), slots.end());
  if (max_slot >= crcs_.size()) crcs_.resize(max_slot + 1, 0);
  for (size_t i = 0; i < slots.size(); ++i) {
    crcs_[slots[i]] = crcs[i];
    live_.insert(slots[i]);
    stats_.RecordAllocate();
    stats_.RecordWrite();
  }
  if (slots.size() > 1) stats_.RecordBatchWrite(slots.size());
  ids->insert(ids->end(), slots.begin(), slots.end());
  return Status::OK();
}

Status FileBlockDevice::ReadAttempt(BlockId id, BlockData* out, bool verify,
                                    uint32_t expected_crc) {
  out->resize(options_.block_size);
  const off_t offset =
      static_cast<off_t>(id) * static_cast<off_t>(options_.block_size);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inject_read_faults_ > 0) {
      --inject_read_faults_;
      return Status::IoError("injected transient read fault on block " +
                             std::to_string(id));
    }
  }
  LSMSSD_RETURN_IF_ERROR(PreadFully(fd_, out->data(), out->size(), offset,
                                    "pread block " + std::to_string(id)));
  stats_.RecordReadSyscall();
  if (verify && crc32c::Value(out->data(), out->size()) != expected_crc) {
    return Status::Corruption("checksum mismatch on block " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status FileBlockDevice::ReadLiveBlock(BlockId id, BlockData* out,
                                      uint32_t expected_crc) {
  stats_.RecordRead();
  Status st;
  for (int attempt = 0; attempt < kMaxReadAttempts; ++attempt) {
    if (attempt > 0) read_retries_.fetch_add(1, std::memory_order_relaxed);
    st = ReadAttempt(id, out, /*verify=*/true, expected_crc);
    // Retry only transient I/O errors; a checksum mismatch is stable
    // on-media damage and re-reading the same bytes cannot fix it.
    if (st.ok() || !st.IsIoError()) return st;
  }
  return st;
}

Status FileBlockDevice::ReadBlock(BlockId id, BlockData* out) {
  uint32_t expected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!live_.contains(id)) {
      return Status::NotFound("block " + std::to_string(id) +
                              " not allocated");
    }
    expected = id < crcs_.size() ? crcs_[id] : 0;
  }
  return ReadLiveBlock(id, out, expected);
}

Status FileBlockDevice::ReadBlocks(const std::vector<BlockId>& ids,
                                   std::vector<BlockData>* out) {
  out->resize(ids.size());
  std::vector<uint32_t> expected(ids.size());
  bool faults_pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < ids.size(); ++i) {
      if (!live_.contains(ids[i])) {
        return Status::NotFound("block " + std::to_string(ids[i]) +
                                " not allocated");
      }
      expected[i] = ids[i] < crcs_.size() ? crcs_[ids[i]] : 0;
    }
    faults_pending = inject_read_faults_ > 0;
  }
  for (size_t begin = 0; begin < ids.size();) {
    size_t end = begin + 1;
    if (!faults_pending) {
      while (end < ids.size() && end - begin < kMaxIovecs &&
             ids[end] == ids[end - 1] + 1) {
        ++end;
      }
    }
    if (end - begin == 1) {
      // Lone slot (or the fault seam is armed, which must fire per block):
      // the retrying single-block path.
      LSMSSD_RETURN_IF_ERROR(
          ReadLiveBlock(ids[begin], &(*out)[begin], expected[begin]));
      begin = end;
      continue;
    }
    std::vector<struct iovec> iov(end - begin);
    for (size_t i = begin; i < end; ++i) {
      (*out)[i].resize(options_.block_size);
      iov[i - begin].iov_base = (*out)[i].data();
      iov[i - begin].iov_len = (*out)[i].size();
    }
    const off_t offset = static_cast<off_t>(ids[begin]) *
                         static_cast<off_t>(options_.block_size);
    Status st = PreadvFully(fd_, iov.data(), iov.size(), offset,
                            "preadv blocks " + std::to_string(ids[begin]) +
                                ".." + std::to_string(ids[end - 1]));
    if (st.ok()) {
      stats_.RecordReadSyscall();
      for (size_t i = begin; i < end; ++i) {
        stats_.RecordRead();
        if (crc32c::Value((*out)[i].data(), (*out)[i].size()) != expected[i]) {
          return Status::Corruption("checksum mismatch on block " +
                                    std::to_string(ids[i]));
        }
      }
    } else {
      // Vectored read failed; fall back to per-block reads so the bounded
      // retry machinery gets a chance at each block individually.
      for (size_t i = begin; i < end; ++i) {
        LSMSSD_RETURN_IF_ERROR(
            ReadLiveBlock(ids[i], &(*out)[i], expected[i]));
      }
    }
    begin = end;
  }
  if (ids.size() > 1) stats_.RecordBatchRead(ids.size());
  return Status::OK();
}

Status FileBlockDevice::VerifyBlock(BlockId id) {
  BlockData scratch;
  return ReadBlock(id, &scratch);
}

Status FileBlockDevice::CorruptBlockForTesting(BlockId id,
                                               const BlockData& data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!live_.contains(id)) {
      return Status::NotFound("block " + std::to_string(id) +
                              " not allocated");
    }
  }
  if (data.size() > options_.block_size) {
    return Status::InvalidArgument("block payload larger than block size");
  }
  BlockData padded = data;
  padded.resize(options_.block_size, 0);
  const off_t offset =
      static_cast<off_t>(id) * static_cast<off_t>(options_.block_size);
  // Data only — the sidecar keeps the original checksum, as silent media
  // corruption would.
  return PwriteFully(fd_, padded.data(), padded.size(), offset,
                     "pwrite (corrupt) block " + std::to_string(id));
}

Status FileBlockDevice::ReadBlockUnverifiedForTesting(BlockId id,
                                                      BlockData* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!live_.contains(id)) {
      return Status::NotFound("block " + std::to_string(id) +
                              " not allocated");
    }
  }
  return ReadAttempt(id, out, /*verify=*/false, 0);
}

Status FileBlockDevice::RestoreLive(const std::vector<BlockId>& live_blocks) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_slot_ != 1 || !live_.empty()) {
    return Status::FailedPrecondition(
        "RestoreLive on a device that already allocated blocks");
  }
  BlockId max_slot = 0;
  for (BlockId id : live_blocks) {
    if (id == 0) return Status::InvalidArgument("slot 0 is reserved");
    if (!live_.insert(id).second) {
      return Status::InvalidArgument("duplicate live block id");
    }
    max_slot = std::max(max_slot, id);
  }
  if (max_slot >= crcs_.size() && !live_.empty()) {
    live_.clear();
    return Status::Corruption("checksum sidecar " + crc_path_ +
                              " is missing entries for live blocks");
  }
  next_slot_ = max_slot + 1;
  for (BlockId slot = 1; slot < next_slot_; ++slot) {
    if (!live_.contains(slot)) free_slots_.push_back(slot);
  }
  return Status::OK();
}

Status FileBlockDevice::Flush() {
  if (options_.use_osync) return Status::OK();
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync " + path_, errno);
  if (::fsync(crc_fd_) != 0) return ErrnoStatus("fsync " + crc_path_, errno);
  return Status::OK();
}

Status FileBlockDevice::FreeBlock(BlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end()) {
    return Status::NotFound("free of unallocated block " +
                            std::to_string(id));
  }
  live_.erase(it);
  free_slots_.push_back(id);
  stats_.RecordFree();
  return Status::OK();
}

}  // namespace lsmssd
