#include "src/storage/file_block_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <string_view>

#include "src/util/crc32c.h"
#include "src/util/logging.h"

namespace lsmssd {

namespace {

// How many times a read is attempted before the error is surfaced. Real
// SSDs see transient bus/ECC hiccups that succeed on retry; persistent
// failures still surface after this bound.
constexpr int kMaxReadAttempts = 3;

/// Maps the current errno to a typed Status: disk-full conditions become
/// ResourceExhausted (callers turn them into backpressure), everything
/// else is an I/O error.
Status ErrnoStatus(const std::string& what, int err) {
  std::string msg = what + ": " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(std::move(msg));
  }
  return Status::IoError(std::move(msg));
}

/// pwrite that retries EINTR and continues short writes until `n` bytes
/// land. A zero-progress write (possible when the filesystem runs out of
/// space mid-transfer) is reported as ENOSPC rather than looping forever.
Status PwriteFully(int fd, const uint8_t* buf, size_t n, off_t off,
                   const std::string& what) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pwrite(fd, buf + done, n - done, off + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(what, errno);
    }
    if (r == 0) return ErrnoStatus(what + " (no progress)", ENOSPC);
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

/// pread that retries EINTR and continues short reads until `n` bytes
/// arrive. Hitting EOF early means the file is shorter than the slot
/// layout requires — corruption of the backing store, not a syscall error.
Status PreadFully(int fd, uint8_t* buf, size_t n, off_t off,
                  const std::string& what) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, buf + done, n - done, off + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(what, errno);
    }
    if (r == 0) {
      return Status::Corruption(what + ": short read (" +
                                std::to_string(done) + " of " +
                                std::to_string(n) + " bytes)");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

void EncodeCrc(uint32_t crc, uint8_t out[4]) {
  out[0] = static_cast<uint8_t>(crc);
  out[1] = static_cast<uint8_t>(crc >> 8);
  out[2] = static_cast<uint8_t>(crc >> 16);
  out[3] = static_cast<uint8_t>(crc >> 24);
}

uint32_t DecodeCrc(const uint8_t in[4]) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

}  // namespace

std::string FileBlockDevice::SidecarPath(const std::string& path) {
  constexpr std::string_view kDevSuffix = ".dev";
  if (path.size() > kDevSuffix.size() &&
      path.compare(path.size() - kDevSuffix.size(), kDevSuffix.size(),
                   kDevSuffix) == 0) {
    return path.substr(0, path.size() - kDevSuffix.size()) + ".crc";
  }
  return path + ".crc";
}

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, const FileOptions& options) {
  if (options.block_size == 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  int flags = O_RDWR | O_CREAT;
  if (options.truncate) flags |= O_TRUNC;
  if (options.use_osync) flags |= O_SYNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoStatus("open " + path, errno);
  const std::string crc_path = SidecarPath(path);
  const int crc_fd = ::open(crc_path.c_str(), flags, 0644);
  if (crc_fd < 0) {
    Status st = ErrnoStatus("open " + crc_path, errno);
    ::close(fd);
    return st;
  }
  auto dev = std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(path, options, fd, crc_fd));
  if (!options.truncate) {
    // Reopening a persisted device: mirror the sidecar into memory.
    struct stat sb;
    if (::fstat(crc_fd, &sb) != 0) {
      return ErrnoStatus("fstat " + crc_path, errno);
    }
    const uint64_t slots = static_cast<uint64_t>(sb.st_size) / 4;
    dev->crcs_.resize(slots, 0);
    if (slots > 0) {
      std::vector<uint8_t> raw(slots * 4);
      LSMSSD_RETURN_IF_ERROR(
          PreadFully(crc_fd, raw.data(), raw.size(), 0, "pread " + crc_path));
      for (uint64_t s = 0; s < slots; ++s) {
        dev->crcs_[s] = DecodeCrc(raw.data() + s * 4);
      }
    }
  }
  return dev;
}

FileBlockDevice::FileBlockDevice(std::string path, FileOptions options,
                                 int fd, int crc_fd)
    : path_(std::move(path)),
      crc_path_(SidecarPath(path_)),
      options_(options),
      fd_(fd),
      crc_fd_(crc_fd) {}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
  if (crc_fd_ >= 0) ::close(crc_fd_);
  if (options_.remove_on_close) {
    ::unlink(path_.c_str());
    ::unlink(crc_path_.c_str());
  }
}

Status FileBlockDevice::WriteCrc(BlockId slot, uint32_t crc) {
  uint8_t raw[4];
  EncodeCrc(crc, raw);
  LSMSSD_RETURN_IF_ERROR(PwriteFully(crc_fd_, raw, sizeof(raw),
                                     static_cast<off_t>(slot) * 4,
                                     "pwrite crc for block " +
                                         std::to_string(slot)));
  if (slot >= crcs_.size()) crcs_.resize(slot + 1, 0);
  crcs_[slot] = crc;
  return Status::OK();
}

StatusOr<BlockId> FileBlockDevice::WriteNewBlock(const BlockData& data) {
  if (data.size() > options_.block_size) {
    return Status::InvalidArgument("block payload larger than block size");
  }
  if (options_.max_blocks != 0 && live_.size() >= options_.max_blocks) {
    return Status::ResourceExhausted(
        "device full: " + std::to_string(live_.size()) + " of " +
        std::to_string(options_.max_blocks) + " blocks live");
  }
  BlockId slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = next_slot_++;
  }

  BlockData padded = data;
  padded.resize(options_.block_size, 0);
  const off_t offset =
      static_cast<off_t>(slot) * static_cast<off_t>(options_.block_size);
  if (inject_write_errno_ != 0) {
    const int err = inject_write_errno_;
    inject_write_errno_ = 0;
    free_slots_.push_back(slot);
    return ErrnoStatus("pwrite block " + std::to_string(slot), err);
  }
  Status st = PwriteFully(fd_, padded.data(), padded.size(), offset,
                          "pwrite block " + std::to_string(slot));
  if (!st.ok()) {
    // A partial write may have landed; the slot stays free and its bytes
    // are never readable, so the tear is harmless.
    free_slots_.push_back(slot);
    return st;
  }
  st = WriteCrc(slot, crc32c::Value(padded.data(), padded.size()));
  if (!st.ok()) {
    free_slots_.push_back(slot);
    return st;
  }
  live_.insert(slot);
  stats_.RecordAllocate();
  stats_.RecordWrite();
  return slot;
}

Status FileBlockDevice::ReadAttempt(BlockId id, BlockData* out, bool verify) {
  out->resize(options_.block_size);
  const off_t offset =
      static_cast<off_t>(id) * static_cast<off_t>(options_.block_size);
  if (inject_read_faults_ > 0) {
    --inject_read_faults_;
    return Status::IoError("injected transient read fault on block " +
                           std::to_string(id));
  }
  LSMSSD_RETURN_IF_ERROR(PreadFully(fd_, out->data(), out->size(), offset,
                                    "pread block " + std::to_string(id)));
  if (verify) {
    const uint32_t expected = id < crcs_.size() ? crcs_[id] : 0;
    if (id >= crcs_.size() ||
        crc32c::Value(out->data(), out->size()) != expected) {
      return Status::Corruption("checksum mismatch on block " +
                                std::to_string(id));
    }
  }
  return Status::OK();
}

Status FileBlockDevice::ReadBlock(BlockId id, BlockData* out) {
  if (!live_.contains(id)) {
    return Status::NotFound("block " + std::to_string(id) + " not allocated");
  }
  stats_.RecordRead();
  Status st;
  for (int attempt = 0; attempt < kMaxReadAttempts; ++attempt) {
    if (attempt > 0) ++read_retries_;
    st = ReadAttempt(id, out, /*verify=*/true);
    // Retry only transient I/O errors; a checksum mismatch is stable
    // on-media damage and re-reading the same bytes cannot fix it.
    if (st.ok() || !st.IsIoError()) return st;
  }
  return st;
}

Status FileBlockDevice::VerifyBlock(BlockId id) {
  BlockData scratch;
  return ReadBlock(id, &scratch);
}

Status FileBlockDevice::CorruptBlockForTesting(BlockId id,
                                               const BlockData& data) {
  if (!live_.contains(id)) {
    return Status::NotFound("block " + std::to_string(id) + " not allocated");
  }
  if (data.size() > options_.block_size) {
    return Status::InvalidArgument("block payload larger than block size");
  }
  BlockData padded = data;
  padded.resize(options_.block_size, 0);
  const off_t offset =
      static_cast<off_t>(id) * static_cast<off_t>(options_.block_size);
  // Data only — the sidecar keeps the original checksum, as silent media
  // corruption would.
  return PwriteFully(fd_, padded.data(), padded.size(), offset,
                     "pwrite (corrupt) block " + std::to_string(id));
}

Status FileBlockDevice::ReadBlockUnverifiedForTesting(BlockId id,
                                                      BlockData* out) {
  if (!live_.contains(id)) {
    return Status::NotFound("block " + std::to_string(id) + " not allocated");
  }
  return ReadAttempt(id, out, /*verify=*/false);
}

Status FileBlockDevice::RestoreLive(const std::vector<BlockId>& live_blocks) {
  if (next_slot_ != 1 || !live_.empty()) {
    return Status::FailedPrecondition(
        "RestoreLive on a device that already allocated blocks");
  }
  BlockId max_slot = 0;
  for (BlockId id : live_blocks) {
    if (id == 0) return Status::InvalidArgument("slot 0 is reserved");
    if (!live_.insert(id).second) {
      return Status::InvalidArgument("duplicate live block id");
    }
    max_slot = std::max(max_slot, id);
  }
  if (max_slot >= crcs_.size() && !live_.empty()) {
    live_.clear();
    return Status::Corruption("checksum sidecar " + crc_path_ +
                              " is missing entries for live blocks");
  }
  next_slot_ = max_slot + 1;
  for (BlockId slot = 1; slot < next_slot_; ++slot) {
    if (!live_.contains(slot)) free_slots_.push_back(slot);
  }
  return Status::OK();
}

Status FileBlockDevice::Flush() {
  if (options_.use_osync) return Status::OK();
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync " + path_, errno);
  if (::fsync(crc_fd_) != 0) return ErrnoStatus("fsync " + crc_path_, errno);
  return Status::OK();
}

Status FileBlockDevice::FreeBlock(BlockId id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return Status::NotFound("free of unallocated block " +
                            std::to_string(id));
  }
  live_.erase(it);
  free_slots_.push_back(id);
  stats_.RecordFree();
  return Status::OK();
}

}  // namespace lsmssd
