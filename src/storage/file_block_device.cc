#include "src/storage/file_block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>

#include "src/util/logging.h"

namespace lsmssd {

namespace {
Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}
}  // namespace

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, const FileOptions& options) {
  if (options.block_size == 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  int flags = O_RDWR | O_CREAT;
  if (options.truncate) flags |= O_TRUNC;
  if (options.use_osync) flags |= O_SYNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open " + path);
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(path, options, fd));
}

FileBlockDevice::FileBlockDevice(std::string path, FileOptions options,
                                 int fd)
    : path_(std::move(path)), options_(options), fd_(fd) {}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
  if (options_.remove_on_close) ::unlink(path_.c_str());
}

StatusOr<BlockId> FileBlockDevice::WriteNewBlock(const BlockData& data) {
  if (data.size() > options_.block_size) {
    return Status::InvalidArgument("block payload larger than block size");
  }
  BlockId slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = next_slot_++;
  }

  BlockData padded = data;
  padded.resize(options_.block_size, 0);
  const off_t offset =
      static_cast<off_t>(slot) * static_cast<off_t>(options_.block_size);
  ssize_t n = ::pwrite(fd_, padded.data(), padded.size(), offset);
  if (n != static_cast<ssize_t>(padded.size())) {
    free_slots_.push_back(slot);
    return Errno("pwrite block " + std::to_string(slot));
  }
  live_.insert(slot);
  stats_.RecordAllocate();
  stats_.RecordWrite();
  return slot;
}

Status FileBlockDevice::ReadBlock(BlockId id, BlockData* out) {
  if (!live_.contains(id)) {
    return Status::NotFound("block " + std::to_string(id) + " not allocated");
  }
  out->resize(options_.block_size);
  const off_t offset =
      static_cast<off_t>(id) * static_cast<off_t>(options_.block_size);
  ssize_t n = ::pread(fd_, out->data(), out->size(), offset);
  if (n != static_cast<ssize_t>(out->size())) {
    return Errno("pread block " + std::to_string(id));
  }
  stats_.RecordRead();
  return Status::OK();
}

Status FileBlockDevice::RestoreLive(const std::vector<BlockId>& live_blocks) {
  if (next_slot_ != 1 || !live_.empty()) {
    return Status::FailedPrecondition(
        "RestoreLive on a device that already allocated blocks");
  }
  BlockId max_slot = 0;
  for (BlockId id : live_blocks) {
    if (id == 0) return Status::InvalidArgument("slot 0 is reserved");
    if (!live_.insert(id).second) {
      return Status::InvalidArgument("duplicate live block id");
    }
    max_slot = std::max(max_slot, id);
  }
  next_slot_ = max_slot + 1;
  for (BlockId slot = 1; slot < next_slot_; ++slot) {
    if (!live_.contains(slot)) free_slots_.push_back(slot);
  }
  return Status::OK();
}

Status FileBlockDevice::Flush() {
  if (options_.use_osync) return Status::OK();
  if (::fsync(fd_) != 0) return Errno("fsync " + path_);
  return Status::OK();
}

Status FileBlockDevice::FreeBlock(BlockId id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return Status::NotFound("free of unallocated block " +
                            std::to_string(id));
  }
  live_.erase(it);
  free_slots_.push_back(id);
  stats_.RecordFree();
  return Status::OK();
}

}  // namespace lsmssd
