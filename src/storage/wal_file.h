#ifndef LSMSSD_STORAGE_WAL_FILE_H_
#define LSMSSD_STORAGE_WAL_FILE_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// Append-only log file abstraction: the seam between the WAL framing
/// layer (src/lsm/wal.h) and the bytes-on-disk layer, so tests can
/// interpose a fault-injecting implementation that loses or tears
/// unsynced data exactly like a crash would.
class WalFile {
 public:
  virtual ~WalFile() = default;

  /// Appends `data` at the end of the log. An entry is only guaranteed
  /// durable after a subsequent successful Sync().
  virtual Status Append(std::string_view data) = 0;

  /// Makes every previously appended byte durable (fsync).
  virtual Status Sync() = 0;

  /// Empties the log (after a successful checkpoint) and syncs.
  virtual Status Truncate() = 0;
};

/// Production WalFile: unbuffered positional appends to a plain file via a
/// raw fd, fsync on Sync, ftruncate on Truncate. Opens in append mode so a
/// reopened log keeps its existing entries.
class PosixWalFile : public WalFile {
 public:
  static StatusOr<std::unique_ptr<PosixWalFile>> Open(
      const std::string& path);
  ~PosixWalFile() override;

  PosixWalFile(const PosixWalFile&) = delete;
  PosixWalFile& operator=(const PosixWalFile&) = delete;

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Truncate() override;

  const std::string& path() const { return path_; }

 private:
  PosixWalFile(std::string path, int fd);

  std::string path_;
  int fd_;
};

}  // namespace lsmssd

#endif  // LSMSSD_STORAGE_WAL_FILE_H_
