#ifndef LSMSSD_FORMAT_RECORD_BLOCK_VIEW_H_
#define LSMSSD_FORMAT_RECORD_BLOCK_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/format/options.h"
#include "src/format/record.h"
#include "src/storage/block.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// Zero-copy reader over one encoded data block (the image produced by
/// RecordBlockBuilder / EncodeRecordBlock). Parse() validates the whole
/// block once — header, slot bounds, record types, strict key order — and
/// the accessors then address the encoded slots in place: no per-record
/// Record materialization, no payload string allocation. Point lookups
/// binary-search the fixed-width slots directly (keys are big-endian, so
/// decoding one key per probe is a few loads).
///
/// The view does NOT own the block image; the caller keeps it alive (the
/// read path passes a std::shared_ptr<const BlockData> alongside, see
/// Level::ReadLeafView). Records are only materialized on demand via
/// record_at()/Materialize(), i.e. for slots a caller actually emits.
class RecordBlockView {
 public:
  RecordBlockView() = default;

  /// Validates `data` (same corruption checks as DecodeRecordBlock) and
  /// returns a view addressing it. `data` must outlive the view.
  static StatusOr<RecordBlockView> Parse(const Options& options,
                                         const uint8_t* data, size_t size);
  static StatusOr<RecordBlockView> Parse(const Options& options,
                                         const BlockData& data) {
    return Parse(options, data.data(), data.size());
  }

  /// Number of records stored in the block.
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Key of slot `i` (i < size()).
  Key key_at(size_t i) const;
  RecordType type_at(size_t i) const;
  bool is_tombstone_at(size_t i) const {
    return type_at(i) == RecordType::kDelete;
  }
  /// Payload bytes of slot `i`, viewed in place; empty for tombstones.
  std::string_view payload_at(size_t i) const;

  /// Materializes slot `i` as a Record (allocates the payload copy).
  Record record_at(size_t i) const;

  Key min_key() const { return key_at(0); }
  Key max_key() const { return key_at(count_ - 1); }

  /// Index of the first slot with key >= `key` (== size() if none).
  size_t LowerBound(Key key) const;

  /// Finds `key`; returns true and sets `*slot` when present.
  bool Find(Key key, size_t* slot) const;

  /// Materializes every record (the decode path; one pass, pre-reserved).
  std::vector<Record> Materialize() const;

 private:
  RecordBlockView(const uint8_t* slots, size_t count, size_t key_size,
                  size_t payload_size)
      : slots_(slots),
        count_(count),
        key_size_(key_size),
        payload_size_(payload_size) {}

  const uint8_t* slot_ptr(size_t i) const {
    return slots_ + i * (1 + key_size_ + payload_size_);
  }

  const uint8_t* slots_ = nullptr;  // First slot, just past the header.
  size_t count_ = 0;
  size_t key_size_ = 0;
  size_t payload_size_ = 0;
};

}  // namespace lsmssd

#endif  // LSMSSD_FORMAT_RECORD_BLOCK_VIEW_H_
