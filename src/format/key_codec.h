#ifndef LSMSSD_FORMAT_KEY_CODEC_H_
#define LSMSSD_FORMAT_KEY_CODEC_H_

#include <cstddef>
#include <cstdint>

namespace lsmssd {

/// Logical key type. The serialized width is Options::key_size bytes;
/// encoding is big-endian so byte order equals key order.
using Key = uint64_t;

/// Largest key representable in `key_size` bytes.
Key MaxKeyForSize(size_t key_size);

/// Writes `key` big-endian into `dst[0..key_size)`. `key` must fit.
void EncodeKey(Key key, size_t key_size, uint8_t* dst);

/// Reads a big-endian key of `key_size` bytes from `src`.
Key DecodeKey(const uint8_t* src, size_t key_size);

}  // namespace lsmssd

#endif  // LSMSSD_FORMAT_KEY_CODEC_H_
