#include "src/format/record_block.h"

#include <cstring>

#include "src/util/logging.h"

namespace lsmssd {

namespace {
constexpr size_t kHeaderSize = 4;

void PutU16(uint8_t* dst, uint16_t v) {
  dst[0] = static_cast<uint8_t>(v & 0xff);
  dst[1] = static_cast<uint8_t>(v >> 8);
}

uint16_t GetU16(const uint8_t* src) {
  return static_cast<uint16_t>(src[0]) |
         (static_cast<uint16_t>(src[1]) << 8);
}
}  // namespace

RecordBlockBuilder::RecordBlockBuilder(const Options& options)
    : options_(options), capacity_(options.records_per_block()) {
  LSMSSD_CHECK_GE(capacity_, 1u);
}

void RecordBlockBuilder::Add(const Record& record) {
  LSMSSD_CHECK(!full());
  if (!records_.empty()) {
    LSMSSD_CHECK_LT(records_.back().key, record.key)
        << "records must be added in strictly increasing key order";
  }
  LSMSSD_DCHECK(record.payload.size() == options_.payload_size ||
                (record.is_tombstone() && record.payload.empty()))
      << "payload size " << record.payload.size() << " vs configured "
      << options_.payload_size;
  records_.push_back(record);
}

Key RecordBlockBuilder::min_key() const {
  LSMSSD_CHECK(!records_.empty());
  return records_.front().key;
}

Key RecordBlockBuilder::max_key() const {
  LSMSSD_CHECK(!records_.empty());
  return records_.back().key;
}

BlockData RecordBlockBuilder::Finish() {
  BlockData data = EncodeRecordBlock(options_, records_);
  records_.clear();
  return data;
}

BlockData EncodeRecordBlock(const Options& options,
                            const std::vector<Record>& records) {
  const size_t record_size = options.record_size();
  LSMSSD_CHECK_LE(records.size(), options.records_per_block());
  BlockData data(kHeaderSize + records.size() * record_size, 0);
  PutU16(data.data(), static_cast<uint16_t>(records.size()));
  PutU16(data.data() + 2, static_cast<uint16_t>(record_size));
  uint8_t* slot = data.data() + kHeaderSize;
  for (const Record& r : records) {
    slot[0] = static_cast<uint8_t>(r.type);
    EncodeKey(r.key, options.key_size, slot + 1);
    if (!r.payload.empty()) {
      std::memcpy(slot + 1 + options.key_size, r.payload.data(),
                  r.payload.size());
    }
    slot += record_size;
  }
  return data;
}

StatusOr<std::vector<Record>> DecodeRecordBlock(const Options& options,
                                                const BlockData& data) {
  if (data.size() < kHeaderSize) {
    return Status::Corruption("block smaller than header");
  }
  const size_t count = GetU16(data.data());
  const size_t record_size = GetU16(data.data() + 2);
  if (record_size != options.record_size()) {
    return Status::Corruption("record size mismatch: block says " +
                              std::to_string(record_size) + ", options say " +
                              std::to_string(options.record_size()));
  }
  if (count > options.records_per_block()) {
    return Status::Corruption("record count exceeds block capacity");
  }
  if (kHeaderSize + count * record_size > data.size()) {
    return Status::Corruption("record slots exceed block size");
  }

  std::vector<Record> records;
  records.reserve(count);
  const uint8_t* slot = data.data() + kHeaderSize;
  Key prev_key = 0;
  for (size_t i = 0; i < count; ++i) {
    Record r;
    if (slot[0] > static_cast<uint8_t>(RecordType::kDelete)) {
      return Status::Corruption("unknown record type " +
                                std::to_string(slot[0]));
    }
    r.type = static_cast<RecordType>(slot[0]);
    r.key = DecodeKey(slot + 1, options.key_size);
    if (i > 0 && r.key <= prev_key) {
      return Status::Corruption("records out of order within block");
    }
    prev_key = r.key;
    if (!r.is_tombstone()) {
      r.payload.assign(
          reinterpret_cast<const char*>(slot + 1 + options.key_size),
          options.payload_size);
    }
    records.push_back(std::move(r));
    slot += record_size;
  }
  return records;
}

}  // namespace lsmssd
