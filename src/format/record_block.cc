#include "src/format/record_block.h"

#include <cstring>

#include "src/format/record_block_view.h"
#include "src/util/logging.h"

namespace lsmssd {

namespace {
constexpr size_t kHeaderSize = 4;

void PutU16(uint8_t* dst, uint16_t v) {
  dst[0] = static_cast<uint8_t>(v & 0xff);
  dst[1] = static_cast<uint8_t>(v >> 8);
}

}  // namespace

RecordBlockBuilder::RecordBlockBuilder(const Options& options)
    : options_(options), capacity_(options.records_per_block()) {
  LSMSSD_CHECK_GE(capacity_, 1u);
}

void RecordBlockBuilder::Add(const Record& record) {
  LSMSSD_CHECK(!full());
  if (!records_.empty()) {
    LSMSSD_CHECK_LT(records_.back().key, record.key)
        << "records must be added in strictly increasing key order";
  }
  LSMSSD_DCHECK(record.payload.size() == options_.stored_payload_size() ||
                (record.is_tombstone() && record.payload.empty()))
      << "payload size " << record.payload.size() << " vs configured "
      << options_.stored_payload_size();
  records_.push_back(record);
}

Key RecordBlockBuilder::min_key() const {
  LSMSSD_CHECK(!records_.empty());
  return records_.front().key;
}

Key RecordBlockBuilder::max_key() const {
  LSMSSD_CHECK(!records_.empty());
  return records_.back().key;
}

BlockData RecordBlockBuilder::Finish() {
  BlockData data = EncodeRecordBlock(options_, records_);
  records_.clear();
  return data;
}

BlockData EncodeRecordBlock(const Options& options,
                            const std::vector<Record>& records) {
  const size_t record_size = options.record_size();
  LSMSSD_CHECK_LE(records.size(), options.records_per_block());
  BlockData data(kHeaderSize + records.size() * record_size, 0);
  PutU16(data.data(), static_cast<uint16_t>(records.size()));
  PutU16(data.data() + 2, static_cast<uint16_t>(record_size));
  uint8_t* slot = data.data() + kHeaderSize;
  for (const Record& r : records) {
    slot[0] = static_cast<uint8_t>(r.type);
    EncodeKey(r.key, options.key_size, slot + 1);
    if (!r.payload.empty()) {
      std::memcpy(slot + 1 + options.key_size, r.payload.data(),
                  r.payload.size());
    }
    slot += record_size;
  }
  return data;
}

StatusOr<std::vector<Record>> DecodeRecordBlock(const Options& options,
                                                const BlockData& data) {
  // Validation lives in RecordBlockView::Parse; this is the materializing
  // convenience wrapper (compaction, tests, tools).
  auto view_or = RecordBlockView::Parse(options, data);
  if (!view_or.ok()) return view_or.status();
  return view_or.value().Materialize();
}

}  // namespace lsmssd
