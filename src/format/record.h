#ifndef LSMSSD_FORMAT_RECORD_H_
#define LSMSSD_FORMAT_RECORD_H_

#include <string>

#include "src/format/key_codec.h"

namespace lsmssd {

/// Index record kinds. LSM logs modifications as records: an insert/update
/// carries a payload; a delete is a tombstone that cancels out a matching
/// record in a lower level during merges (Section II-A). Updates are
/// blind-write Puts in this model (one record per key per level), so no
/// separate type is needed.
enum class RecordType : uint8_t {
  kPut = 0,
  kDelete = 1,
};

/// One index record. Payloads are fixed-width (Options::payload_size);
/// tombstone payloads are empty in memory and zero-filled on disk.
struct Record {
  Key key = 0;
  RecordType type = RecordType::kPut;
  std::string payload;

  static Record Put(Key key, std::string payload) {
    return Record{key, RecordType::kPut, std::move(payload)};
  }
  static Record Tombstone(Key key) {
    return Record{key, RecordType::kDelete, std::string()};
  }

  bool is_tombstone() const { return type == RecordType::kDelete; }

  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.type == b.type && a.payload == b.payload;
  }
};

/// Consolidates two records with the same key, `upper` being the newer one
/// (from the higher level). Returns the net effect:
///  * upper Put    + lower anything -> upper Put (value replaced)
///  * upper Delete + lower Put      -> nothing when `annihilate_delete_put`
///    (the paper's net-effect rule; safe only if no older version of the
///    key can exist in a deeper level), otherwise the Delete survives and
///    keeps moving down
///  * upper Delete + lower Delete   -> one Delete (keeps moving down)
/// `*out` receives the surviving record when the function returns true;
/// false means both records vanish.
bool ConsolidateRecords(const Record& upper, const Record& lower,
                        bool annihilate_delete_put, Record* out);

}  // namespace lsmssd

#endif  // LSMSSD_FORMAT_RECORD_H_
