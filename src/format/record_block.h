#ifndef LSMSSD_FORMAT_RECORD_BLOCK_H_
#define LSMSSD_FORMAT_RECORD_BLOCK_H_

#include <vector>

#include "src/format/options.h"
#include "src/format/record.h"
#include "src/storage/block.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// Serializes records into one data block.
///
/// Layout: [uint16 LE record_count][uint16 LE record_size] followed by
/// record_count fixed-width slots of record_size bytes each, sorted by key:
/// [uint8 type][big-endian key][payload (zero-padded for tombstones)].
/// A block holds at most B = Options::records_per_block() records; slots
/// beyond record_count are empty ("waste" in the paper's constraints).
class RecordBlockBuilder {
 public:
  explicit RecordBlockBuilder(const Options& options);

  /// Appends one record. Keys must arrive in strictly increasing order and
  /// the block must not be full. Payload size must be 0 (tombstone) or
  /// exactly Options::payload_size.
  void Add(const Record& record);

  bool empty() const { return records_.empty(); }
  bool full() const { return records_.size() >= capacity_; }
  size_t count() const { return records_.size(); }
  size_t capacity() const { return capacity_; }

  Key min_key() const;
  Key max_key() const;

  /// Serializes the buffered records and resets the builder.
  BlockData Finish();

  /// Drops buffered records without serializing.
  void Reset() { records_.clear(); }

  const std::vector<Record>& records() const { return records_; }

 private:
  const Options& options_;
  size_t capacity_;
  std::vector<Record> records_;
};

/// Parses a data block written by RecordBlockBuilder. Fails with Corruption
/// on malformed headers or slot contents.
StatusOr<std::vector<Record>> DecodeRecordBlock(const Options& options,
                                                const BlockData& data);

/// Serializes `records` (already sorted, size <= B) into a block image.
/// Convenience used by compaction and tests.
BlockData EncodeRecordBlock(const Options& options,
                            const std::vector<Record>& records);

}  // namespace lsmssd

#endif  // LSMSSD_FORMAT_RECORD_BLOCK_H_
