#include "src/format/options.h"

#include <string>

namespace lsmssd {

Status Options::Validate(uint32_t device_block_size) const {
  auto fail = [](const char* reason) {
    return Status::InvalidArgument(std::string("bad options: ") + reason);
  };
  if (key_size < 1 || key_size > 8) return fail("key_size must be in 1..8");
  if (block_size < 4 + record_size()) {
    return fail("block_size too small for even one record");
  }
  if (records_per_block() < 1) return fail("records_per_block < 1");
  if (gamma <= 1.0) return fail("gamma must exceed 1");
  if (epsilon <= 0.0 || epsilon > 0.5) {
    return fail("epsilon must be in (0, 0.5]");
  }
  if (delta <= 0.0 || delta >= 1.0) return fail("delta must be in (0,1)");
  if (level0_capacity_blocks < 1) return fail("K0 must be >= 1 block");
  if (vlog_value_threshold != 0 && vlog_value_threshold <= kVlogPointerSize) {
    return fail("vlog_value_threshold must be 0 or exceed the 16-byte pointer");
  }
  if (device_block_size != 0 && block_size != device_block_size) {
    return Status::InvalidArgument(
        "options block_size " + std::to_string(block_size) +
        " does not match device block size " +
        std::to_string(device_block_size));
  }
  return Status::OK();
}

}  // namespace lsmssd
