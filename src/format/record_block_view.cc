#include "src/format/record_block_view.h"

#include <string>

#include "src/util/logging.h"

namespace lsmssd {

namespace {
constexpr size_t kHeaderSize = 4;

uint16_t GetU16(const uint8_t* src) {
  return static_cast<uint16_t>(src[0]) |
         (static_cast<uint16_t>(src[1]) << 8);
}
}  // namespace

StatusOr<RecordBlockView> RecordBlockView::Parse(const Options& options,
                                                 const uint8_t* data,
                                                 size_t size) {
  if (size < kHeaderSize) {
    return Status::Corruption("block smaller than header");
  }
  const size_t count = GetU16(data);
  const size_t record_size = GetU16(data + 2);
  if (record_size != options.record_size()) {
    return Status::Corruption("record size mismatch: block says " +
                              std::to_string(record_size) + ", options say " +
                              std::to_string(options.record_size()));
  }
  if (count > options.records_per_block()) {
    return Status::Corruption("record count exceeds block capacity");
  }
  if (kHeaderSize + count * record_size > size) {
    return Status::Corruption("record slots exceed block size");
  }

  RecordBlockView view(data + kHeaderSize, count, options.key_size,
                       options.stored_payload_size());
  // Validate types and strict key order once; accessors trust the image
  // afterwards. O(count) key decodes, zero allocation.
  Key prev_key = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint8_t* slot = view.slot_ptr(i);
    if (slot[0] > static_cast<uint8_t>(RecordType::kDelete)) {
      return Status::Corruption("unknown record type " +
                                std::to_string(slot[0]));
    }
    const Key key = DecodeKey(slot + 1, options.key_size);
    if (i > 0 && key <= prev_key) {
      return Status::Corruption("records out of order within block");
    }
    prev_key = key;
  }
  return view;
}

Key RecordBlockView::key_at(size_t i) const {
  LSMSSD_DCHECK(i < count_);
  return DecodeKey(slot_ptr(i) + 1, key_size_);
}

RecordType RecordBlockView::type_at(size_t i) const {
  LSMSSD_DCHECK(i < count_);
  return static_cast<RecordType>(slot_ptr(i)[0]);
}

std::string_view RecordBlockView::payload_at(size_t i) const {
  LSMSSD_DCHECK(i < count_);
  if (is_tombstone_at(i)) return {};
  return std::string_view(
      reinterpret_cast<const char*>(slot_ptr(i) + 1 + key_size_),
      payload_size_);
}

Record RecordBlockView::record_at(size_t i) const {
  Record r;
  r.key = key_at(i);
  r.type = type_at(i);
  const std::string_view payload = payload_at(i);
  r.payload.assign(payload.data(), payload.size());
  return r;
}

size_t RecordBlockView::LowerBound(Key key) const {
  size_t lo = 0, hi = count_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (key_at(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool RecordBlockView::Find(Key key, size_t* slot) const {
  const size_t i = LowerBound(key);
  if (i == count_ || key_at(i) != key) return false;
  *slot = i;
  return true;
}

std::vector<Record> RecordBlockView::Materialize() const {
  std::vector<Record> records;
  records.reserve(count_);
  for (size_t i = 0; i < count_; ++i) records.push_back(record_at(i));
  return records;
}

}  // namespace lsmssd
