#include "src/format/record.h"

#include "src/util/logging.h"

namespace lsmssd {

bool ConsolidateRecords(const Record& upper, const Record& lower,
                        bool annihilate_delete_put, Record* out) {
  LSMSSD_DCHECK(upper.key == lower.key);
  if (upper.type == RecordType::kPut) {
    *out = upper;  // Newer value shadows the older one (or revives a delete).
    return true;
  }
  // Upper is a tombstone.
  if (lower.type == RecordType::kPut) {
    if (annihilate_delete_put) {
      return false;  // Delete cancels out the insert: net effect is nothing.
    }
    // An older version of the key may still exist in a deeper level, so
    // the tombstone must keep moving down (it replaces the insert).
    *out = upper;
    return true;
  }
  *out = upper;  // Two tombstones collapse into one.
  return true;
}

}  // namespace lsmssd
