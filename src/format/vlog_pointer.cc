#include "src/format/vlog_pointer.h"

namespace lsmssd {
namespace {

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

void EncodeVlogPointer(const VlogPointer& ptr, std::string* out) {
  out->reserve(out->size() + kVlogPointerSize);
  PutU32(ptr.file, out);
  PutU64(ptr.offset, out);
  PutU32(ptr.length, out);
}

std::string EncodeVlogPointerToString(const VlogPointer& ptr) {
  std::string out;
  EncodeVlogPointer(ptr, &out);
  return out;
}

bool DecodeVlogPointer(std::string_view data, VlogPointer* ptr) {
  if (data.size() != kVlogPointerSize) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  ptr->file = GetU32(p);
  ptr->offset = GetU64(p + 4);
  ptr->length = GetU32(p + 12);
  return true;
}

}  // namespace lsmssd
