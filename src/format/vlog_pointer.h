#ifndef LSMSSD_FORMAT_VLOG_POINTER_H_
#define LSMSSD_FORMAT_VLOG_POINTER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/format/options.h"

namespace lsmssd {

/// The fixed-width record payload stored in the tree when key–value
/// separation is on: it names where the real value lives in the value
/// log. 16 bytes, little-endian:
///
///   [u32 file][u64 offset][u32 length]
///
/// `file` is the vlog segment number (dir/vlog-<file>), `offset` the
/// byte offset of the entry *header* within that segment, and `length`
/// the value length (redundant with the entry header, but it lets
/// readers size their read without a second seek and lets recovery
/// bound the durable vlog frontier from WAL records alone).
struct VlogPointer {
  uint32_t file = 0;
  uint64_t offset = 0;
  uint32_t length = 0;

  bool operator==(const VlogPointer& o) const {
    return file == o.file && offset == o.offset && length == o.length;
  }
};

/// Appends the 16-byte encoding of `ptr` to `out`.
void EncodeVlogPointer(const VlogPointer& ptr, std::string* out);

/// Returns the 16-byte encoding of `ptr`.
std::string EncodeVlogPointerToString(const VlogPointer& ptr);

/// Decodes a pointer from exactly kVlogPointerSize bytes. Returns false
/// when `data` has the wrong size.
bool DecodeVlogPointer(std::string_view data, VlogPointer* ptr);

}  // namespace lsmssd

#endif  // LSMSSD_FORMAT_VLOG_POINTER_H_
