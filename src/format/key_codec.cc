#include "src/format/key_codec.h"

#include <limits>

#include "src/util/logging.h"

namespace lsmssd {

Key MaxKeyForSize(size_t key_size) {
  LSMSSD_CHECK_GE(key_size, 1u);
  LSMSSD_CHECK_LE(key_size, 8u);
  if (key_size == 8) return std::numeric_limits<Key>::max();
  return (Key{1} << (8 * key_size)) - 1;
}

void EncodeKey(Key key, size_t key_size, uint8_t* dst) {
  LSMSSD_DCHECK(key <= MaxKeyForSize(key_size))
      << "key " << key << " does not fit in " << key_size << " bytes";
  for (size_t i = 0; i < key_size; ++i) {
    dst[i] = static_cast<uint8_t>(key >> (8 * (key_size - 1 - i)));
  }
}

Key DecodeKey(const uint8_t* src, size_t key_size) {
  Key key = 0;
  for (size_t i = 0; i < key_size; ++i) {
    key = (key << 8) | src[i];
  }
  return key;
}

}  // namespace lsmssd
