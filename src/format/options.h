#ifndef LSMSSD_FORMAT_OPTIONS_H_
#define LSMSSD_FORMAT_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "src/storage/block.h"
#include "src/util/status.h"

namespace lsmssd {

/// Width of the fixed vlog pointer record stored in the tree when
/// key–value separation is on: u32 file number + u64 offset + u32
/// length (src/format/vlog_pointer.h).
inline constexpr size_t kVlogPointerSize = 16;

/// Configuration of an LSM tree. Defaults reproduce the paper's
/// experimental setup (Section V): 4 KB blocks, 4-byte keys in [0, 1e9],
/// 100-byte payloads, order Gamma = 10, K0 = 4000 blocks (16 MB),
/// max waste factor epsilon = 0.2, merge rate delta = 0.07.
struct Options {
  /// Device block size in bytes. Must match the device the tree runs on.
  size_t block_size = kDefaultBlockSize;

  /// Serialized key width in bytes (1..8). Keys are uint64 in the API; a
  /// key must fit in key_size bytes.
  size_t key_size = 4;

  /// Fixed payload width in bytes. Records are 1 (type) + key_size +
  /// payload_size bytes; tombstones occupy a full record slot, as in the
  /// paper's fixed-slot block model.
  size_t payload_size = 100;

  /// L0 capacity K0 in blocks. L0 is memory-resident; its capacity is
  /// expressed in equivalent data blocks (K0 * B records).
  uint64_t level0_capacity_blocks = 4000;

  /// Order Gamma of the tree: K_i = K0 * Gamma^i.
  double gamma = 10.0;

  /// Maximum waste factor epsilon (<= 0.5): each on-SSD level with at least
  /// two data blocks keeps its fraction of empty record slots <= epsilon.
  double epsilon = 0.2;

  /// Merge rate delta: partial merges move (up to) delta * K_source blocks
  /// of the source level.
  double delta = 0.07;

  /// Enables block-preserving merges (Section II-B). The "-P" policy
  /// variants of the paper are obtained by switching this off.
  bool preserve_blocks = true;

  /// Buffer-cache capacity in blocks for CachedBlockDevice users
  /// (0 disables). Does not affect write counts.
  size_t cache_blocks = 0;

  /// Merge output blocks buffered before one vectored WriteBlocks call
  /// (0 or 1 = write each block immediately, the historical behavior).
  /// Batching only changes *when* the device sees each block — allocation
  /// order, block ids, and the paper's block-write counts are identical —
  /// so FileBlockDevice can coalesce contiguous slots into one pwritev
  /// and amortize the checksum-sidecar update. Runtime-only: not stored
  /// in the manifest, taken from the caller on every open.
  size_t io_batch_blocks = 32;

  /// Number of on-SSD levels to pre-create at Open (0 = grow on demand,
  /// the paper's behavior). The paper's Section V-A observes that a
  /// relatively empty extra bottom level makes merges dramatically
  /// cheaper and asks "whether we can increase the number of levels
  /// strategically to gain performance"; this knob implements that
  /// strategy and bench/abl_level_growth measures it.
  size_t initial_levels = 0;

  /// Bits per key for the per-leaf Bloom filters kept in memory beside the
  /// leaf directory (0 disables them, the paper's main-text setup; its
  /// technical report discusses Bloom filters as an orthogonal lookup
  /// optimization). ~10 bits/key gives a ~1% false-positive rate and lets
  /// negative lookups skip the data-block read.
  size_t bloom_bits_per_key = 0;

  /// When a tombstone meets a matching insert during a merge into a
  /// NON-bottom level, annihilate both (the paper's "net effect"
  /// consolidation, Section II-A). Only safe when the workload never
  /// re-inserts a key that may still have an older version in a deeper
  /// level — true for all of the paper's workloads, which draw insert keys
  /// from un-indexed keys. When false (the safe default), the tombstone
  /// replaces the insert and keeps moving down; it is dropped on reaching
  /// the bottom level either way.
  bool annihilate_delete_put = false;

  /// Key–value separation threshold in bytes (0 = off, the paper's
  /// layout). When payload_size >= threshold the tree stores a
  /// fixed-width 16-byte vlog pointer per record and the payload bytes
  /// live in a per-Db append-only checksummed value log (WiscKey-style;
  /// see DESIGN.md §11). Format-defining: stored in the manifest and
  /// validated against it on reopen, like payload_size itself.
  size_t vlog_value_threshold = 0;

  /// True when this configuration separates values into the vlog.
  /// Because every record's payload is exactly payload_size bytes, the
  /// decision is whole-tree, not per-record.
  bool vlog_enabled() const {
    return vlog_value_threshold > 0 && payload_size >= vlog_value_threshold;
  }

  /// Payload width as stored in tree blocks: the vlog pointer when
  /// separation is on, the full payload otherwise. Everything that
  /// serializes records (block encode/parse, manifest replay, WAL
  /// framing through Db) uses this width; payload_size keeps the
  /// user-visible value width for the API and workload generators.
  size_t stored_payload_size() const {
    return vlog_enabled() ? kVlogPointerSize : payload_size;
  }

  /// Bytes of one serialized record.
  size_t record_size() const { return 1 + key_size + stored_payload_size(); }

  /// B: records per block, net of the 4-byte block header.
  size_t records_per_block() const {
    return (block_size - 4) / record_size();
  }

  /// K_i in blocks (i = 0 is L0).
  uint64_t LevelCapacityBlocks(size_t level) const {
    double cap = static_cast<double>(level0_capacity_blocks);
    for (size_t i = 0; i < level; ++i) cap *= gamma;
    return static_cast<uint64_t>(cap);
  }

  /// Number of source blocks a partial merge moves out of `source_level`
  /// (at least 1).
  uint64_t PartialMergeBlocks(size_t source_level) const {
    const double b = delta * static_cast<double>(LevelCapacityBlocks(source_level));
    const auto n = static_cast<uint64_t>(b);
    return n == 0 ? 1 : n;
  }

  /// Sanity-checks the configuration, optionally against the block size
  /// of the device the tree will run on (`device_block_size` = 0 skips
  /// that check). The single source of truth shared by LsmTree::Open /
  /// Restore, Db::Open, and manifest decoding — implemented in
  /// options.cc.
  Status Validate(uint32_t device_block_size = 0) const;
};

}  // namespace lsmssd

#endif  // LSMSSD_FORMAT_OPTIONS_H_
