#include "src/policy/policy_factory.h"

#include "src/policy/choose_best_policy.h"
#include "src/policy/full_policy.h"
#include "src/policy/partitioned_policy.h"
#include "src/policy/rr_policy.h"
#include "src/util/logging.h"

namespace lsmssd {

std::unique_ptr<MergePolicy> CreatePolicy(PolicyKind kind,
                                          const MixedParams& mixed_params) {
  switch (kind) {
    case PolicyKind::kFull:
      return std::make_unique<FullPolicy>();
    case PolicyKind::kRr:
      return std::make_unique<RrPolicy>();
    case PolicyKind::kChooseBest:
      return std::make_unique<ChooseBestPolicy>();
    case PolicyKind::kMixed:
      return std::make_unique<MixedPolicy>(mixed_params);
    case PolicyKind::kTestMixed:
      return std::make_unique<MixedPolicy>(MixedPolicy::TestMixed());
    case PolicyKind::kPartitioned:
      return std::make_unique<PartitionedChooseBestPolicy>();
  }
  LSMSSD_CHECK(false) << "unknown policy kind";
  return nullptr;
}

bool ParsePolicyKind(std::string_view name, PolicyKind* out) {
  if (name == "Full") {
    *out = PolicyKind::kFull;
  } else if (name == "RR") {
    *out = PolicyKind::kRr;
  } else if (name == "ChooseBest") {
    *out = PolicyKind::kChooseBest;
  } else if (name == "Mixed") {
    *out = PolicyKind::kMixed;
  } else if (name == "TestMixed") {
    *out = PolicyKind::kTestMixed;
  } else if (name == "PartitionedCB") {
    *out = PolicyKind::kPartitioned;
  } else {
    return false;
  }
  return true;
}

std::string_view PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFull:
      return "Full";
    case PolicyKind::kRr:
      return "RR";
    case PolicyKind::kChooseBest:
      return "ChooseBest";
    case PolicyKind::kMixed:
      return "Mixed";
    case PolicyKind::kTestMixed:
      return "TestMixed";
    case PolicyKind::kPartitioned:
      return "PartitionedCB";
  }
  return "?";
}

}  // namespace lsmssd
