#include "src/policy/partitioned_policy.h"

#include <limits>
#include <vector>

#include "src/lsm/lsm_tree.h"
#include "src/util/logging.h"

namespace lsmssd {

namespace {

/// Number of target leaves overlapping [lo, hi].
size_t OverlapCount(const Level& target, Key lo, Key hi) {
  const auto [begin, end] = target.OverlapRange(lo, hi);
  return end - begin;
}

}  // namespace

MergeSelection PartitionedChooseBestPolicy::SelectMerge(const LsmTree& tree,
                                                        size_t source_level) {
  const Options& options = tree.options();
  const size_t target_index = source_level + 1;
  LSMSSD_CHECK_LT(target_index, tree.num_levels());
  const Level& target = tree.level(target_index);

  if (source_level == 0) {
    const Memtable& mem = tree.memtable();
    const size_t n = mem.size();
    LSMSSD_CHECK_GT(n, 0u);
    const size_t window = std::min<size_t>(
        options.PartialMergeBlocks(0) * options.records_per_block(), n);
    const std::vector<Key> keys = mem.SortedKeys();

    size_t best_begin = 0;
    size_t best_overlap = std::numeric_limits<size_t>::max();
    for (size_t begin = 0; begin < n; begin += window) {
      const size_t count = std::min(window, n - begin);
      const size_t overlap =
          OverlapCount(target, keys[begin], keys[begin + count - 1]);
      if (overlap < best_overlap) {
        best_overlap = overlap;
        best_begin = begin;
      }
    }
    return MergeSelection::Records(best_begin,
                                   std::min(window, n - best_begin));
  }

  const Level& source = tree.level(source_level);
  const size_t n = source.num_leaves();
  LSMSSD_CHECK_GT(n, 0u);
  const size_t window =
      std::min<size_t>(options.PartialMergeBlocks(source_level), n);

  size_t best_begin = 0;
  size_t best_overlap = std::numeric_limits<size_t>::max();
  // Candidates are the aligned partitions 0..w, w..2w, ... — the analogue
  // of HyperLevelDB's fixed SSTables.
  for (size_t begin = 0; begin < n; begin += window) {
    const size_t count = std::min(window, n - begin);
    const size_t overlap =
        OverlapCount(target, source.leaf(begin).min_key,
                     source.leaf(begin + count - 1).max_key);
    if (overlap < best_overlap) {
      best_overlap = overlap;
      best_begin = begin;
    }
  }
  return MergeSelection::Leaves(best_begin,
                                std::min(window, n - best_begin));
}

}  // namespace lsmssd
