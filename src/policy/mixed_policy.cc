#include "src/policy/mixed_policy.h"

#include <sstream>

#include "src/lsm/lsm_tree.h"
#include "src/policy/choose_best_policy.h"
#include "src/util/logging.h"

namespace lsmssd {

std::string MixedParams::ToString() const {
  std::ostringstream out;
  out << "tau=[";
  for (size_t i = 2; i < tau.size(); ++i) {
    out << (i > 2 ? "," : "") << tau[i];
  }
  out << "] beta=" << (beta ? "true" : "false");
  return out.str();
}

MixedPolicy::MixedPolicy(MixedParams params) : params_(std::move(params)) {}

MixedPolicy MixedPolicy::TestMixed() {
  MixedParams params;
  params.beta = true;
  return MixedPolicy(std::move(params));
}

MergeSelection MixedPolicy::SelectMerge(const LsmTree& tree,
                                        size_t source_level) {
  const Options& options = tree.options();
  const size_t target_index = source_level + 1;
  LSMSSD_CHECK_LT(target_index, tree.num_levels());
  const Level& target = tree.level(target_index);

  auto choose_best = [&]() -> MergeSelection {
    if (source_level == 0) {
      const size_t window =
          options.PartialMergeBlocks(0) * options.records_per_block();
      return SelectChooseBestFromL0(tree.memtable(), target, window);
    }
    return SelectChooseBestFromLevel(
        tree.level(source_level), target,
        options.PartialMergeBlocks(source_level));
  };

  // Rule 1: merges out of the memory-resident L0 are always partial.
  if (source_level == 0 && !tree.IsBottomLevel(target_index)) {
    return choose_best();
  }

  // Rule 3: the bottom level follows the Boolean decision beta.
  if (tree.IsBottomLevel(target_index)) {
    // When L1 is the bottom (2-level tree), beta also governs merges from
    // L0 — there are no internal levels to protect.
    return params_.beta ? MergeSelection::Full() : choose_best();
  }

  // Rule 2: full merge into an internal level while it is small.
  const double threshold =
      params_.TauFor(target_index) *
      static_cast<double>(tree.LevelCapacityBlocks(target_index));
  if (static_cast<double>(target.size_blocks()) < threshold) {
    return MergeSelection::Full();
  }
  return choose_best();
}

}  // namespace lsmssd
