#ifndef LSMSSD_POLICY_MERGE_POLICY_H_
#define LSMSSD_POLICY_MERGE_POLICY_H_

#include <cstddef>
#include <string_view>

namespace lsmssd {

class LsmTree;

/// What a merge policy decided to merge out of an overflowing level.
/// Either `full` is set (merge the whole level), or exactly one of the two
/// partial descriptions applies: a leaf range for on-SSD source levels, or
/// a sorted-position record range for the memory-resident L0.
struct MergeSelection {
  bool full = false;

  /// Partial merge from a level >= 1: leaves [leaf_begin, leaf_begin +
  /// leaf_count).
  size_t leaf_begin = 0;
  size_t leaf_count = 0;

  /// Partial merge from L0: the record range [record_begin, record_begin +
  /// record_count) in sorted key order.
  size_t record_begin = 0;
  size_t record_count = 0;

  static MergeSelection Full() {
    MergeSelection s;
    s.full = true;
    return s;
  }
  static MergeSelection Leaves(size_t begin, size_t count) {
    MergeSelection s;
    s.leaf_begin = begin;
    s.leaf_count = count;
    return s;
  }
  static MergeSelection Records(size_t begin, size_t count) {
    MergeSelection s;
    s.record_begin = begin;
    s.record_count = count;
    return s;
  }
};

/// Strategy interface: decides, at overflow time, which part of the
/// overflowing level to merge into the next one (Section III). Policies
/// work purely on cached metadata (leaf directories, memtable keys) — a
/// selection never performs data-block I/O.
class MergePolicy {
 public:
  virtual ~MergePolicy() = default;

  /// Display name ("Full", "RR", "ChooseBest", "Mixed").
  virtual std::string_view name() const = 0;

  /// Called when `source_level` (0 = L0/memtable) overflows; returns what
  /// to merge into `source_level + 1`. Stateful policies (RR's cursor) may
  /// update internal state — the returned selection is always executed.
  virtual MergeSelection SelectMerge(const LsmTree& tree,
                                     size_t source_level) = 0;

  /// Clears internal state (e.g., RR cursors). Called when the tree is
  /// reconfigured under the policy.
  virtual void Reset() {}
};

}  // namespace lsmssd

#endif  // LSMSSD_POLICY_MERGE_POLICY_H_
