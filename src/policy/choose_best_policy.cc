#include "src/policy/choose_best_policy.h"

#include <limits>
#include <vector>

#include "src/lsm/lsm_tree.h"
#include "src/util/logging.h"

namespace lsmssd {

namespace {

/// Two-pointer minimum-overlap sweep over candidate windows. `n` candidate
/// windows; window j spans keys [lo_key(j), hi_key(j)], both nondecreasing
/// in j. Returns the index of the first window overlapping the fewest
/// target leaves.
template <typename LoKeyFn, typename HiKeyFn>
size_t MinOverlapWindow(size_t n, const Level& target, LoKeyFn lo_key,
                        HiKeyFn hi_key) {
  const auto& leaves = target.leaves();
  size_t lo = 0, hi = 0;  // Target leaf cursor pair for window j.
  size_t best_j = 0;
  size_t best_overlap = std::numeric_limits<size_t>::max();
  for (size_t j = 0; j < n; ++j) {
    const Key klo = lo_key(j);
    const Key khi = hi_key(j);
    while (lo < leaves.size() && leaves[lo].max_key < klo) ++lo;
    if (hi < lo) hi = lo;
    while (hi < leaves.size() && leaves[hi].min_key <= khi) ++hi;
    const size_t overlap = hi - lo;
    if (overlap < best_overlap) {
      best_overlap = overlap;
      best_j = j;
      if (overlap == 0) break;  // Cannot do better.
    }
  }
  return best_j;
}

}  // namespace

MergeSelection SelectChooseBestFromLevel(const Level& source,
                                         const Level& target,
                                         size_t window_blocks) {
  LSMSSD_CHECK_GT(window_blocks, 0u);
  const size_t n = source.num_leaves();
  LSMSSD_CHECK_GT(n, 0u);
  if (window_blocks >= n) return MergeSelection::Leaves(0, n);

  const size_t candidates = n - window_blocks + 1;
  const size_t best = MinOverlapWindow(
      candidates, target,
      [&](size_t j) { return source.leaf(j).min_key; },
      [&](size_t j) { return source.leaf(j + window_blocks - 1).max_key; });
  return MergeSelection::Leaves(best, window_blocks);
}

MergeSelection SelectChooseBestFromL0(const Memtable& source,
                                      const Level& target,
                                      size_t window_records) {
  LSMSSD_CHECK_GT(window_records, 0u);
  const std::vector<Key> keys = source.SortedKeys();
  const size_t n = keys.size();
  LSMSSD_CHECK_GT(n, 0u);
  if (window_records >= n) return MergeSelection::Records(0, n);

  const size_t candidates = n - window_records + 1;
  const size_t best = MinOverlapWindow(
      candidates, target, [&](size_t j) { return keys[j]; },
      [&](size_t j) { return keys[j + window_records - 1]; });
  return MergeSelection::Records(best, window_records);
}

MergeSelection ChooseBestPolicy::SelectMerge(const LsmTree& tree,
                                             size_t source_level) {
  const Options& options = tree.options();
  const size_t target_index = source_level + 1;
  LSMSSD_CHECK_LT(target_index, tree.num_levels());
  const Level& target = tree.level(target_index);

  if (source_level == 0) {
    const size_t window = options.PartialMergeBlocks(0) *
                          options.records_per_block();
    return SelectChooseBestFromL0(tree.memtable(), target, window);
  }
  return SelectChooseBestFromLevel(tree.level(source_level), target,
                                   options.PartialMergeBlocks(source_level));
}

}  // namespace lsmssd
