#include "src/policy/rr_policy.h"

#include <algorithm>
#include <vector>

#include "src/lsm/lsm_tree.h"
#include "src/util/logging.h"

namespace lsmssd {

MergeSelection RrPolicy::SelectMerge(const LsmTree& tree,
                                     size_t source_level) {
  const Options& options = tree.options();
  const size_t target_index = source_level + 1;
  LSMSSD_CHECK_LT(target_index, tree.num_levels());

  auto cursor_it = cursors_.find(source_level);
  const bool has_cursor = cursor_it != cursors_.end();

  if (source_level == 0) {
    const Memtable& mem = tree.memtable();
    const size_t n = mem.size();
    LSMSSD_CHECK_GT(n, 0u);
    const size_t window = std::min<size_t>(
        options.PartialMergeBlocks(0) * options.records_per_block(), n);

    size_t begin = has_cursor ? mem.UpperBoundIndex(cursor_it->second) : 0;
    if (begin >= n) begin = 0;  // Wrap around.
    const size_t count = std::min(window, n - begin);
    // Remember the largest key of the selection for next time.
    const std::vector<Record> last = mem.Slice(begin + count - 1, 1);
    LSMSSD_CHECK_EQ(last.size(), 1u);
    cursors_[source_level] = last.front().key;
    return MergeSelection::Records(begin, count);
  }

  const Level& source = tree.level(source_level);
  const size_t n = source.num_leaves();
  LSMSSD_CHECK_GT(n, 0u);
  const size_t window =
      std::min<size_t>(options.PartialMergeBlocks(source_level), n);

  size_t begin = 0;
  if (has_cursor) {
    // First leaf whose smallest key is greater than the cursor.
    const Key cursor = cursor_it->second;
    const auto& leaves = source.leaves();
    auto it = std::upper_bound(
        leaves.begin(), leaves.end(), cursor,
        [](Key k, const LeafMeta& m) { return k < m.min_key; });
    begin = static_cast<size_t>(it - leaves.begin());
    if (begin >= n) begin = 0;  // No such block left: wrap to the start.
  }
  const size_t count = std::min(window, n - begin);
  cursors_[source_level] = source.leaf(begin + count - 1).max_key;
  return MergeSelection::Leaves(begin, count);
}

}  // namespace lsmssd
