#ifndef LSMSSD_POLICY_PARTITIONED_POLICY_H_
#define LSMSSD_POLICY_PARTITIONED_POLICY_H_

#include "src/policy/merge_policy.h"

namespace lsmssd {

/// HyperLevelDB-style restricted ChooseBest (Section VI): the key space of
/// each level is pre-partitioned — here into aligned runs of delta * K
/// blocks, the analogue of fixed SSTable boundaries — and the policy picks
/// the best candidate *only among those partitions*, instead of sliding a
/// window over every position like ChooseBest. The paper argues
/// ChooseBest(-P) lower-bounds this policy's cost: with strictly fewer
/// candidates, the selected overlap can only be equal or worse.
class PartitionedChooseBestPolicy : public MergePolicy {
 public:
  std::string_view name() const override { return "PartitionedCB"; }
  MergeSelection SelectMerge(const LsmTree& tree,
                             size_t source_level) override;
};

}  // namespace lsmssd

#endif  // LSMSSD_POLICY_PARTITIONED_POLICY_H_
