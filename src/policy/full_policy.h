#ifndef LSMSSD_POLICY_FULL_POLICY_H_
#define LSMSSD_POLICY_FULL_POLICY_H_

#include "src/policy/merge_policy.h"

namespace lsmssd {

/// The original LSM merge policy (Section III-A): an overflowing level is
/// always merged in its entirety into the next one. Worst-case cost of one
/// merge into L_i is K_i; amortized cost is (K_i + Delta)/2 per merge
/// (Proposition 1), i.e. about (Gamma + 1)/2 per block merged (Cor. 1).
class FullPolicy : public MergePolicy {
 public:
  std::string_view name() const override { return "Full"; }
  MergeSelection SelectMerge(const LsmTree& tree,
                             size_t source_level) override;
};

}  // namespace lsmssd

#endif  // LSMSSD_POLICY_FULL_POLICY_H_
