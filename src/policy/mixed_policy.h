#ifndef LSMSSD_POLICY_MIXED_POLICY_H_
#define LSMSSD_POLICY_MIXED_POLICY_H_

#include <string>
#include <vector>

#include "src/policy/merge_policy.h"

namespace lsmssd {

/// Parameters of the Mixed policy (Section IV-B): one threshold tau_i in
/// [0, 1] per internal level i (2 <= i <= h-2) and a Boolean decision beta
/// for the bottom level.
struct MixedParams {
  /// tau[i] is the threshold for merges *into* level i. Indices 0, 1 and
  /// anything >= h-1 are ignored; missing entries default to 0 (never do a
  /// full merge into that level).
  std::vector<double> tau;
  /// Full merges into the bottom level iff true.
  bool beta = false;

  double TauFor(size_t level) const {
    return level < tau.size() ? tau[level] : 0.0;
  }

  std::string ToString() const;
};

/// Mixed (Section IV-B): judiciously alternates Full and ChooseBest.
///  * merges out of L0 are always ChooseBest partials (there is no benefit
///    to emptying the in-memory level);
///  * a merge into an internal level L_i (2 <= i <= h-2) is Full while
///    S(L_i) < tau_i * K_i, else a ChooseBest partial;
///  * merges into the bottom level are Full iff beta.
/// A full merge into a small level is cheap and leaves it empty, making
/// subsequent merges into it cheap too; the thresholds (learned by
/// MixedLearner) decide when that trade wins.
class MixedPolicy : public MergePolicy {
 public:
  explicit MixedPolicy(MixedParams params);

  /// The fixed test policy of Section IV-A for a 3-level tree: ChooseBest
  /// from L0, Full into the bottom (i.e., beta = true, no thresholds).
  static MixedPolicy TestMixed();

  std::string_view name() const override { return "Mixed"; }
  MergeSelection SelectMerge(const LsmTree& tree,
                             size_t source_level) override;

  const MixedParams& params() const { return params_; }
  void set_params(MixedParams params) { params_ = std::move(params); }

 private:
  MixedParams params_;
};

}  // namespace lsmssd

#endif  // LSMSSD_POLICY_MIXED_POLICY_H_
