#include "src/policy/full_policy.h"

namespace lsmssd {

MergeSelection FullPolicy::SelectMerge(const LsmTree& /*tree*/,
                                       size_t /*source_level*/) {
  return MergeSelection::Full();
}

}  // namespace lsmssd
