#ifndef LSMSSD_POLICY_CHOOSE_BEST_POLICY_H_
#define LSMSSD_POLICY_CHOOSE_BEST_POLICY_H_

#include "src/lsm/level.h"
#include "src/lsm/memtable.h"
#include "src/policy/merge_policy.h"

namespace lsmssd {

/// Selection primitives shared by ChooseBest and Mixed. Each scans cached
/// metadata only (source leaf directory or memtable keys vs. target leaf
/// directory) with a two-pointer sweep — the single simultaneous pass the
/// paper describes in Section III-C.

/// Picks the window of `window_blocks` consecutive source leaves whose key
/// span overlaps the fewest target leaves. If the source has at most
/// `window_blocks` leaves, selects all of them. Ties break to the leftmost
/// window.
MergeSelection SelectChooseBestFromLevel(const Level& source,
                                         const Level& target,
                                         size_t window_blocks);

/// Same, but the source is L0: windows are `window_records` consecutive
/// records of the memtable in key order.
MergeSelection SelectChooseBestFromL0(const Memtable& source,
                                      const Level& target,
                                      size_t window_records);

/// ChooseBest (Section III-C): a partial policy that merges the
/// minimum-overlap window of delta * K_source blocks. Every merge into L_i
/// costs at most delta * (1/Gamma + 1) * K_i blocks (Theorem 2) — unlike
/// Full and RR, no single merge can rewrite the whole next level.
class ChooseBestPolicy : public MergePolicy {
 public:
  std::string_view name() const override { return "ChooseBest"; }
  MergeSelection SelectMerge(const LsmTree& tree,
                             size_t source_level) override;
};

}  // namespace lsmssd

#endif  // LSMSSD_POLICY_CHOOSE_BEST_POLICY_H_
