#include "src/policy/mixed_learner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "src/policy/choose_best_policy.h"
#include "src/policy/full_policy.h"
#include "src/util/golden_section.h"
#include "src/util/logging.h"

namespace lsmssd {

namespace {

/// Probe policy of Definition 1: Mixed rules for merges into levels up to
/// `probe_level`, Full from L_{probe_level} down, ChooseBest below that.
class LearnerProbePolicy : public MergePolicy {
 public:
  LearnerProbePolicy(MixedParams params, size_t probe_level)
      : mixed_(std::move(params)), probe_level_(probe_level) {}

  std::string_view name() const override { return "LearnerProbe"; }

  MergeSelection SelectMerge(const LsmTree& tree,
                             size_t source_level) override {
    if (source_level < probe_level_) {
      return mixed_.SelectMerge(tree, source_level);
    }
    if (source_level == probe_level_) return MergeSelection::Full();
    return choose_best_.SelectMerge(tree, source_level);
  }

 private:
  MixedPolicy mixed_;
  ChooseBestPolicy choose_best_;
  size_t probe_level_;
};

/// Runs requests until full_merges_into[level] increments (cycle
/// boundary), or fails after the safety cap.
Status RunUntilFullMergeInto(LsmTree* tree,
                             const MixedLearner::RequestFn& next_request,
                             size_t level, uint64_t max_requests) {
  auto counter = [&]() -> uint64_t {
    const auto& v = tree->stats().full_merges_into;
    return level < v.size() ? v[level] : 0;
  };
  const uint64_t start = counter();
  for (uint64_t i = 0; i < max_requests; ++i) {
    LSMSSD_RETURN_IF_ERROR(next_request(tree));
    if (counter() > start) return Status::OK();
  }
  return Status::Internal("no full merge observed within request budget");
}

/// Runs requests until records_merged_into[1] grows by `target_records`.
Status RunUntilRecordsIntoL1(LsmTree* tree,
                             const MixedLearner::RequestFn& next_request,
                             uint64_t target_records,
                             uint64_t max_requests) {
  auto counter = [&]() -> uint64_t {
    const auto& v = tree->stats().records_merged_into;
    return v.size() > 1 ? v[1] : 0;
  };
  const uint64_t start = counter();
  for (uint64_t i = 0; i < max_requests; ++i) {
    LSMSSD_RETURN_IF_ERROR(next_request(tree));
    if (counter() - start >= target_records) return Status::OK();
  }
  return Status::Internal("request budget exhausted before target volume");
}

/// Amortized cost over a stats window: blocks written into L1..max_level
/// divided by records merged into L1 (Definition 1's ratio).
double WindowCost(const LsmStats& delta, size_t max_level) {
  double cost = 0;
  for (size_t j = 1; j <= max_level; ++j) {
    cost += static_cast<double>(delta.BlocksWrittenForLevel(j));
  }
  const auto denom = static_cast<double>(
      delta.records_merged_into.size() > 1 ? delta.records_merged_into[1]
                                           : 0);
  if (denom <= 0) return std::numeric_limits<double>::infinity();
  return cost / denom;
}

}  // namespace

StatusOr<double> MixedLearner::MeasureThresholdCost(
    LsmTree* tree, const RequestFn& next_request, const MixedParams& params,
    size_t probe_level, const Config& config) {
  tree->set_policy(
      std::make_unique<LearnerProbePolicy>(params, probe_level));
  // Align to a cycle boundary: a full merge into L_{probe_level + 1}
  // empties L_{probe_level}.
  LSMSSD_RETURN_IF_ERROR(
      RunUntilFullMergeInto(tree, next_request, probe_level + 1,
                            config.max_requests_per_measurement));
  const LsmStats before = tree->stats();
  const uint64_t cycles = std::max<uint64_t>(1, config.cycles_per_measurement);
  for (uint64_t c = 0; c < cycles; ++c) {
    LSMSSD_RETURN_IF_ERROR(
        RunUntilFullMergeInto(tree, next_request, probe_level + 1,
                              config.max_requests_per_measurement));
  }
  return WindowCost(tree->stats().DeltaSince(before), probe_level);
}

StatusOr<double> MixedLearner::MeasureBetaCost(LsmTree* tree,
                                               const RequestFn& next_request,
                                               MixedParams params, bool beta,
                                               const Config& config) {
  params.beta = beta;
  const size_t h = tree->num_levels();
  LSMSSD_CHECK_GE(h, 2u);
  const size_t bottom = h - 1;
  tree->set_policy(std::make_unique<MixedPolicy>(params));

  if (beta) {
    // One bottom-level period: full merge into the bottom to the next.
    LSMSSD_RETURN_IF_ERROR(RunUntilFullMergeInto(
        tree, next_request, bottom, config.max_requests_per_measurement));
    const LsmStats before = tree->stats();
    LSMSSD_RETURN_IF_ERROR(RunUntilFullMergeInto(
        tree, next_request, bottom, config.max_requests_per_measurement));
    return WindowCost(tree->stats().DeltaSince(before), bottom);
  }

  // With partial merges into the bottom, costs settle to a steady slope.
  // Warm up for one second-to-last-level volume, then measure over another.
  const uint64_t volume =
      tree->LevelCapacityBlocks(bottom >= 1 ? bottom - 1 : 0) *
      tree->options().records_per_block();
  LSMSSD_RETURN_IF_ERROR(RunUntilRecordsIntoL1(
      tree, next_request, volume, config.max_requests_per_measurement));
  const LsmStats before = tree->stats();
  LSMSSD_RETURN_IF_ERROR(RunUntilRecordsIntoL1(
      tree, next_request, volume, config.max_requests_per_measurement));
  return WindowCost(tree->stats().DeltaSince(before), bottom);
}

StatusOr<MixedParams> MixedLearner::Learn(LsmTree* tree,
                                          const RequestFn& next_request,
                                          const Config& config) {
  LSMSSD_CHECK_GT(config.tau_step, 0.0);
  const size_t h = tree->num_levels();
  MixedParams params;
  params.tau.assign(std::max<size_t>(h, 3), 0.0);

  const auto grid_size =
      static_cast<size_t>(std::round(1.0 / config.tau_step)) + 1;

  // Top-down: tau_2, tau_3, ..., tau_{h-2} (Definition 2 / Theorem 4).
  for (size_t i = 2; i + 1 < h; ++i) {
    Status measurement_error = Status::OK();
    auto evaluate = [&](size_t idx) -> double {
      MixedParams candidate = params;
      candidate.tau[i] = static_cast<double>(idx) * config.tau_step;
      auto cost_or =
          MeasureThresholdCost(tree, next_request, candidate, i, config);
      if (!cost_or.ok()) {
        if (measurement_error.ok()) measurement_error = cost_or.status();
        return std::numeric_limits<double>::infinity();
      }
      return cost_or.value();
    };
    const MinimizeResult result =
        config.use_golden_section
            ? GoldenSectionMinimize(grid_size, evaluate)
            : LinearScanMinimize(grid_size, evaluate);
    LSMSSD_RETURN_IF_ERROR(measurement_error);
    params.tau[i] = static_cast<double>(result.best_index) * config.tau_step;
    LSMSSD_LOG(Info) << "learned tau_" << i << " = " << params.tau[i]
                     << " (C=" << result.best_value << ", "
                     << result.evaluations << " measurements)";
  }

  // Finally the bottom decision beta.
  auto cost_full_or =
      MeasureBetaCost(tree, next_request, params, /*beta=*/true, config);
  if (!cost_full_or.ok()) return cost_full_or.status();
  auto cost_partial_or =
      MeasureBetaCost(tree, next_request, params, /*beta=*/false, config);
  if (!cost_partial_or.ok()) return cost_partial_or.status();
  params.beta = cost_full_or.value() <= cost_partial_or.value();
  LSMSSD_LOG(Info) << "learned beta=" << (params.beta ? "true" : "false")
                   << " (C_full=" << cost_full_or.value()
                   << " C_partial=" << cost_partial_or.value() << ")";
  return params;
}

}  // namespace lsmssd
