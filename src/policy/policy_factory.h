#ifndef LSMSSD_POLICY_POLICY_FACTORY_H_
#define LSMSSD_POLICY_POLICY_FACTORY_H_

#include <memory>
#include <string_view>

#include "src/policy/merge_policy.h"
#include "src/policy/mixed_policy.h"

namespace lsmssd {

/// The merge policies studied in the paper. Block preservation is
/// orthogonal (Options::preserve_blocks): e.g. the paper's "Full-P" is
/// kFull with preservation off.
enum class PolicyKind {
  kFull,        ///< Always merge the whole level (basic LSM).
  kRr,          ///< Round-robin partials (LevelDB-like).
  kChooseBest,  ///< Minimum-overlap partials (Theorem 2 guarantee).
  kMixed,       ///< Threshold-mixed Full/ChooseBest (Section IV).
  kTestMixed,   ///< Fixed Mixed of Section IV-A (beta=true, no thresholds).
  kPartitioned, ///< HyperLevelDB-like partition-restricted ChooseBest.
};

/// Creates a policy. `mixed_params` is used by kMixed only.
std::unique_ptr<MergePolicy> CreatePolicy(
    PolicyKind kind, const MixedParams& mixed_params = MixedParams());

/// Parses "Full", "RR", "ChooseBest", "Mixed", "TestMixed", "PartitionedCB"
/// (case-sensitive); returns false on unknown names.
bool ParsePolicyKind(std::string_view name, PolicyKind* out);

/// Canonical display name of `kind`.
std::string_view PolicyKindName(PolicyKind kind);

}  // namespace lsmssd

#endif  // LSMSSD_POLICY_POLICY_FACTORY_H_
