#ifndef LSMSSD_POLICY_MIXED_LEARNER_H_
#define LSMSSD_POLICY_MIXED_LEARNER_H_

#include <functional>

#include "src/lsm/lsm_tree.h"
#include "src/policy/mixed_policy.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd {

/// Learns the Mixed policy parameters for a workload (Section IV-C).
///
/// Parameters are learned top-down, one level at a time (Definition 2);
/// Theorem 4 shows the per-level optima compose into the global optimum.
/// Each threshold candidate is evaluated by measuring the amortized cost
/// C(tau_2*, ..., tau_i) over one cycle of L_i — from the full merge into
/// L_{i+1} that empties L_i until L_i fills up again — while the probe
/// policy runs Mixed above L_i, Full from L_i to L_{i+1}, and ChooseBest
/// below. Because -C(tau) is unimodal under the cost model of Theorem 5,
/// the search needs only O(log |D_tau|) measurements (golden section), or
/// an early-stopping linear scan for the paper's coarse 10% grid.
class MixedLearner {
 public:
  /// Applies one workload request to the tree (the learner replays the
  /// live mix on a scratch tree).
  using RequestFn = std::function<Status(LsmTree*)>;

  struct Config {
    /// Grid step of the discretized threshold domain D_tau.
    double tau_step = 0.1;
    /// Golden-section search instead of the early-stopping linear scan.
    bool use_golden_section = false;
    /// Safety valve: abort a measurement that fails to complete a cycle
    /// within this many requests.
    uint64_t max_requests_per_measurement = 200'000'000;
    /// Cycles of L_i averaged per threshold measurement. The paper
    /// measures one cycle; more cycles trade learning time for lower
    /// measurement noise (useful at small scales where one cycle is only
    /// a few thousand requests).
    uint64_t cycles_per_measurement = 1;
  };

  /// Learns thresholds tau_2..tau_{h-2} and the bottom decision beta.
  /// `tree` must be a scratch tree already at the steady-state dataset
  /// size of the target workload; its policy is replaced during learning.
  /// `next_request` feeds the (deterministic) workload mix.
  static StatusOr<MixedParams> Learn(LsmTree* tree,
                                     const RequestFn& next_request,
                                     const Config& config);
  static StatusOr<MixedParams> Learn(LsmTree* tree,
                                     const RequestFn& next_request) {
    return Learn(tree, next_request, Config());
  }

  /// Measures C(params prefix up to `probe_level`) over one cycle of
  /// L_{probe_level} (Definition 1). Exposed for tests and the Figure 5
  /// bench, which plots this curve across tau.
  static StatusOr<double> MeasureThresholdCost(LsmTree* tree,
                                               const RequestFn& next_request,
                                               const MixedParams& params,
                                               size_t probe_level,
                                               const Config& config);

  /// Measures the full-policy cost C(params) with the given beta over a
  /// bottom-level period (beta = true) or an equivalent request volume
  /// (beta = false).
  static StatusOr<double> MeasureBetaCost(LsmTree* tree,
                                          const RequestFn& next_request,
                                          MixedParams params, bool beta,
                                          const Config& config);
};

}  // namespace lsmssd

#endif  // LSMSSD_POLICY_MIXED_LEARNER_H_
