#ifndef LSMSSD_POLICY_RR_POLICY_H_
#define LSMSSD_POLICY_RR_POLICY_H_

#include <unordered_map>

#include "src/format/key_codec.h"
#include "src/policy/merge_policy.h"

namespace lsmssd {

/// Round-robin partial merges (Section III-B; roughly LevelDB's policy).
/// Each merge out of a level takes the next delta * K run of blocks in key
/// order, resuming after the largest key involved in the previous merge
/// from that level and wrapping around at the end of the key range.
/// Amortized cost into L_i is (1/(1-delta) + o(1)) * Gamma per merged
/// block (Theorem 1), but a single unlucky merge can still rewrite nearly
/// the whole next level.
class RrPolicy : public MergePolicy {
 public:
  std::string_view name() const override { return "RR"; }
  MergeSelection SelectMerge(const LsmTree& tree,
                             size_t source_level) override;
  void Reset() override { cursors_.clear(); }

 private:
  /// Largest key selected by the previous merge out of each source level.
  std::unordered_map<size_t, Key> cursors_;
};

}  // namespace lsmssd

#endif  // LSMSSD_POLICY_RR_POLICY_H_
