#!/usr/bin/env bash
# Variance gate over BENCH_merge_latency.json's latency_over_time section
# (ext_merge_latency part 3): the parallel-worker + rate-limiter scheduler
# must keep the latency-over-time curve at least as flat as the 1-worker
# baseline. Budgets are deliberately generous — CI boxes are noisy and the
# windowed stddev doubly so — so only a real head-of-line regression
# (multi-worker runs slower or spikier than the single-worker baseline by
# integer factors) fails the job.
#
# Usage: scripts/check_merge_latency_variance.sh [JSON_PATH]
set -euo pipefail

JSON="${1:-BENCH_merge_latency.json}"
[[ -f "$JSON" ]] || {
  echo "missing $JSON (run ext_merge_latency first)" >&2
  exit 2
}

python3 - "$JSON" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

runs = {r["workers"]: r for r in doc.get("latency_over_time", [])}
for w in (1, 2, 4):
    if w not in runs:
        sys.exit(f"FAIL: no latency_over_time entry for workers={w}")
base = runs[1]
if base["rate_limit_blocks_per_sec"] != 0:
    sys.exit("FAIL: workers=1 baseline should be unpaced")
for w in (2, 4):
    if runs[w]["rate_limit_blocks_per_sec"] == 0:
        sys.exit(f"FAIL: workers={w} run should be rate-limited")

failures = []

def gate(name, value, budget):
    status = "ok" if value <= budget else "FAIL"
    print(f"  {name}: {value:.2f} (budget {budget:g}) {status}")
    if value > budget:
        failures.append(name)

# Whole-run p99 with more workers must not regress past 3x the baseline.
for w in (2, 4):
    if base["p99_us"] > 0:
        gate(f"p99_ratio_workers{w}", runs[w]["p99_us"] / base["p99_us"], 3.0)

# The windowed p99 spike budget: at the full pool the latency-over-time
# curve must be no spikier than the single-worker baseline, within noise.
if base["window_p99_mean_us"] > 0:
    gate("window_p99_mean_ratio_workers4",
         runs[4]["window_p99_mean_us"] / base["window_p99_mean_us"], 1.5)
if base["window_p99_max_us"] > 0:
    gate("window_p99_max_ratio_workers4",
         runs[4]["window_p99_max_us"] / base["window_p99_max_us"], 2.0)

if failures:
    sys.exit("FAIL: merge-latency variance gate: " + ", ".join(failures))
print("merge-latency variance gate passed")
EOF
