#!/usr/bin/env bash
# Crossover gate over BENCH_vlog_crossover.json (ext_vlog_crossover):
# key–value separation must deliver a real write-cost win where it is
# supposed to — at 1015-byte payloads (one inline record per 1 KiB
# block) the separated mode has to write at most half the bytes per
# byte of user data that inline mode does. The metric is a byte count
# (device blocks + WAL + vlog appends over a seeded workload), not a
# timing, so the gate is stable on noisy CI boxes; 2x is well below the
# measured ~2.2x but far above any accounting bug that would erase the
# win. The sanity checks on the small-payload end pin the shape of the
# curve: below the 17-byte threshold separation cannot engage, so the
# two modes must coincide.
#
# Usage: scripts/check_vlog_crossover.sh [JSON_PATH]
set -euo pipefail

JSON="${1:-BENCH_vlog_crossover.json}"
[[ -f "$JSON" ]] || {
  echo "missing $JSON (run ext_vlog_crossover first)" >&2
  exit 2
}

python3 - "$JSON" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

rows = {r["payload_bytes"]: r for r in doc.get("sweep", [])}
for p in (15, 40, 105, 250, 1015):
    if p not in rows:
        sys.exit(f"FAIL: sweep has no payload_bytes={p} row")

# Headline: >= 2x write-cost win at 1015 B.
win = doc.get("win_1015", 0.0)
if win < 2.0:
    sys.exit(f"FAIL: inline/vlog write-cost ratio at 1015 B is {win:.2f}, "
             "need >= 2.0")

# Shape: below the threshold the vlog cannot engage, so the modes must
# write identical byte counts (ratio exactly 1 up to float formatting).
r15 = rows[15]["cost_ratio"]
if abs(r15 - 1.0) > 0.01:
    sys.exit(f"FAIL: at 15 B (< vlog threshold) the modes must coincide, "
             f"got cost_ratio={r15:.3f}")
if rows[15]["vlog"]["vlog_bytes"] != 0:
    sys.exit("FAIL: at 15 B (< vlog threshold) no bytes may reach the vlog")

# A crossover must exist inside the swept range: separation wins
# somewhere at or below 250 B and keeps winning from there up.
crossover = doc.get("crossover_payload_bytes", 0)
if crossover == 0 or crossover > 250:
    sys.exit(f"FAIL: no crossover at or below 250 B "
             f"(crossover_payload_bytes={crossover})")
for p in (crossover, 1015):
    if rows[p]["cost_ratio"] <= 1.0:
        sys.exit(f"FAIL: separation should win at {p} B, "
                 f"cost_ratio={rows[p]['cost_ratio']:.3f}")

print(f"OK: crossover at {crossover} B; "
      f"1015 B write-cost win {win:.2f}x (>= 2.0x)")
EOF
