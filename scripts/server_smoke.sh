#!/usr/bin/env bash
# Loopback server smoke test: start `lsmssd_cli serve` on an ephemeral
# port, drive a short YCSB-A burst through the wire protocol, shut the
# server down with SIGTERM, and require a clean exit with zero
# quarantined blocks. CI runs this under ASan/UBSan so protocol-path
# memory errors fail the job.
#
# Usage: scripts/server_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/tools/lsmssd_cli"
YCSB="$BUILD_DIR/bench/ext_server_ycsb"
[[ -x "$CLI" && -x "$YCSB" ]] || {
  echo "missing $CLI or $YCSB (build first)" >&2
  exit 2
}

DB_DIR="$(mktemp -d)"
SERVE_LOG="$(mktemp)"
SERVE_PID=
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$DB_DIR" "$SERVE_LOG"
}
trap cleanup EXIT

"$CLI" serve --db-path="$DB_DIR" --host=127.0.0.1 --port=0 \
  --shards=2 --background-compaction --scrub-interval-ms=50 \
  --checkpoint-wal-mb=1 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!

# The serve command prints "listening on HOST:PORT" once bound; poll for
# the line only to learn the ephemeral port (sanitizer builds start
# slowly).
for _ in $(seq 1 300); do
  grep -q '^listening on ' "$SERVE_LOG" && break
  kill -0 "$SERVE_PID" 2>/dev/null || {
    echo "server exited before binding:" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  }
  sleep 0.1
done
PORT="$(grep -m1 '^listening on ' "$SERVE_LOG" | sed 's/.*://')"
[[ -n "$PORT" ]] || { echo "could not parse port" >&2; cat "$SERVE_LOG" >&2; exit 1; }

# Readiness = the server answers a PING frame end to end (bound is not
# the same as serving). Retries with backoff instead of sleep-waiting.
"$CLI" ping --host=127.0.0.1 --port="$PORT" --timeout-ms=2000 --attempts=50 || {
  echo "server never answered PING:" >&2
  cat "$SERVE_LOG" >&2
  exit 1
}
echo "server up on port $PORT (pid $SERVE_PID)"

# Short burst: enough traffic to seal memtables and trigger checkpoints
# at --checkpoint-wal-mb=1, small enough for a sanitizer build.
LSMSSD_SCALE="${LSMSSD_SCALE:-0.1}" "$YCSB" \
  --connect="127.0.0.1:$PORT" --workloads=a --threads=4 \
  --json="$DB_DIR/smoke.json"

kill -TERM "$SERVE_PID"
STATUS=0
wait "$SERVE_PID" || STATUS=$?
SERVE_PID=
[[ "$STATUS" -eq 0 ]] || {
  echo "serve exited $STATUS:" >&2
  cat "$SERVE_LOG" >&2
  exit 1
}
grep -q '^quarantined_blocks 0$' "$SERVE_LOG" || {
  echo "expected 'quarantined_blocks 0' in serve output:" >&2
  cat "$SERVE_LOG" >&2
  exit 1
}
echo "server smoke OK:"
grep -E '^(served|drain|quarantined_blocks)' "$SERVE_LOG"
