// Extension experiment: YCSB-style serving workloads over the network
// protocol.
//
// Every other bench drives the engine in-process; this one measures the
// full request path a client sees — frame encode, TCP, epoll dispatch,
// worker execution against the Db, response flush — under the YCSB core
// mixes (A 50/50 read/update, B 95/5, C read-only, E scan/insert,
// F read/RMW) with zipfian-skewed record choice. It is deliberately a
// *pure protocol client*: the only store API it compiles against is
// src/net/client.h, so it cannot cheat around the wire format.
//
// By default it spawns an in-process server (bench/harness/
// embedded_server.h, a pimpl that keeps engine types out of this
// binary) configured for sustained load: background compaction, a 1 MB
// checkpoint threshold (so checkpoints fire continuously), and a 25 ms
// online-scrub cadence — the YCSB phases and the soak window run with
// all three maintenance activities concurrently active. The epilogue
// asserts the store came out clean: zero scrub corruptions, zero
// quarantined blocks, and zero leaked device blocks.
//
// With --connect=HOST:PORT it instead drives an external
// `lsmssd_cli serve` (the CI smoke job does this under ASan/UBSan).
//
// Results land on stdout (table) and in BENCH_server_ycsb.json:
// per-workload per-opcode p50/p95/p99 plus a windowed latency-over-time
// series (250 ms windows) showing how checkpoint and compaction
// activity moves the tail.
//
//   --workloads=abcef  --records=N  --ops=N  --threads=T
//   --soak-seconds=S (0 skips the soak window)  --shards=N
//   --connect=HOST:PORT  --json=PATH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/embedded_server.h"
#include "src/net/client.h"
#include "src/util/flags.h"
#include "src/util/histogram.h"
#include "src/util/logging.h"
#include "src/util/table_printer.h"
#include "src/workload/ycsb.h"

namespace lsmssd::bench {
namespace {

using net::Client;
using net::ClientOptions;
using net::ScanItem;

constexpr size_t kNumOps = 5;  // YcsbRequest::Op cardinality.
constexpr const char* kOpNames[kNumOps] = {"read", "update", "insert",
                                           "scan", "rmw"};
constexpr uint64_t kWindowMs = 250;

double Scale() {
  const char* scale = std::getenv("LSMSSD_SCALE");
  if (scale == nullptr) return 1.0;
  const double v = std::atof(scale);
  return v > 0 ? v : 1.0;
}

struct PhaseResult {
  char workload = '?';
  uint64_t ops = 0;
  uint64_t errors = 0;
  double seconds = 0;
  LatencyHistogram per_op[kNumOps];
  /// Latency-over-time: all-opcode histogram per kWindowMs window.
  std::vector<LatencyHistogram> windows;
};

struct ThreadAccum {
  uint64_t ops = 0;
  uint64_t errors = 0;
  LatencyHistogram per_op[kNumOps];
  std::vector<LatencyHistogram> windows;
};

std::unique_ptr<Client> MustConnect(const std::string& host, uint16_t port) {
  ClientOptions copts;
  copts.host = host;
  copts.port = port;
  auto client_or = Client::Connect(copts);
  LSMSSD_CHECK(client_or.ok()) << "connect " << host << ":" << port
                               << " failed: "
                               << client_or.status().ToString();
  return std::move(client_or).value();
}

/// Loads records [0, records) with `threads` concurrent connections.
void LoadRecords(const std::string& host, uint16_t port, uint64_t records,
                 size_t threads, const std::string& value,
                 const YcsbConfig& cfg) {
  const YcsbWorkload keyspace(cfg);  // Only KeyForIndex is used.
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> loaders;
  loaders.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    loaders.emplace_back([&, t] {
      auto client = MustConnect(host, port);
      const uint64_t lo = records * t / threads;
      const uint64_t hi = records * (t + 1) / threads;
      for (uint64_t i = lo; i < hi; ++i) {
        if (!client->Put(keyspace.KeyForIndex(i), value).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : loaders) t.join();
  LSMSSD_CHECK(failures.load() == 0)
      << failures.load() << " load puts failed";
}

/// Runs one YCSB phase: `threads` connections, each with its own
/// deterministic request stream. Ops mode (`soak_seconds` == 0) splits
/// `ops` across the threads; soak mode runs until the deadline.
PhaseResult RunPhase(const std::string& host, uint16_t port, char workload,
                     uint64_t records, uint64_t ops, size_t threads,
                     double soak_seconds, uint64_t seed_base,
                     const std::string& value) {
  std::vector<ThreadAccum> accums(threads);
  std::vector<std::thread> runners;
  runners.reserve(threads);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(soak_seconds));
  for (size_t t = 0; t < threads; ++t) {
    runners.emplace_back([&, t] {
      ThreadAccum& acc = accums[t];
      auto client = MustConnect(host, port);
      YcsbConfig cfg;
      cfg.workload = workload;
      cfg.initial_records = records;
      cfg.seed = seed_base + t;
      YcsbWorkload wl(cfg);
      const uint64_t share =
          soak_seconds > 0 ? 0 : ops / threads + (t < ops % threads ? 1 : 0);
      for (uint64_t i = 0;; ++i) {
        if (soak_seconds > 0) {
          if ((i & 63) == 0 &&
              std::chrono::steady_clock::now() >= deadline) {
            break;
          }
        } else if (i >= share) {
          break;
        }
        const YcsbRequest req = wl.Next();
        const auto t0 = std::chrono::steady_clock::now();
        bool ok = false;
        switch (req.op) {
          case YcsbRequest::Op::kRead:
            // NotFound counts as an error: every readable index was
            // loaded, so a miss means the store lost an acked write.
            ok = client->Get(req.key).ok();
            break;
          case YcsbRequest::Op::kUpdate:
          case YcsbRequest::Op::kInsert:
            ok = client->Put(req.key, value).ok();
            break;
          case YcsbRequest::Op::kScan: {
            std::vector<ScanItem> items;
            ok = client
                     ->Scan(req.key, wl.config().key_max, req.scan_len,
                            &items)
                     .ok();
            break;
          }
          case YcsbRequest::Op::kReadModifyWrite: {
            auto got = client->Get(req.key);
            ok = got.ok() && client->Put(req.key, value).ok();
            break;
          }
        }
        const auto t1 = std::chrono::steady_clock::now();
        const uint64_t us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count());
        acc.per_op[static_cast<size_t>(req.op)].Add(us);
        const uint64_t window = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(t0 - start)
                .count() /
            kWindowMs);
        if (acc.windows.size() <= window) acc.windows.resize(window + 1);
        acc.windows[window].Add(us);
        ++acc.ops;
        if (!ok) ++acc.errors;
      }
    });
  }
  for (auto& t : runners) t.join();
  const auto end = std::chrono::steady_clock::now();

  PhaseResult r;
  r.workload = workload;
  r.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  for (const ThreadAccum& acc : accums) {
    r.ops += acc.ops;
    r.errors += acc.errors;
    for (size_t op = 0; op < kNumOps; ++op) r.per_op[op].Merge(acc.per_op[op]);
    if (r.windows.size() < acc.windows.size()) {
      r.windows.resize(acc.windows.size());
    }
    for (size_t w = 0; w < acc.windows.size(); ++w) {
      r.windows[w].Merge(acc.windows[w]);
    }
  }
  return r;
}

std::string PhaseJson(const PhaseResult& r, const std::string& mix) {
  std::string json = "    {";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "\"workload\": \"%c\", \"mix\": \"%s\", \"ops\": %llu, "
                "\"errors\": %llu, \"seconds\": %.3f, \"ops_per_sec\": %.1f,\n",
                r.workload, mix.c_str(),
                static_cast<unsigned long long>(r.ops),
                static_cast<unsigned long long>(r.errors), r.seconds,
                r.seconds > 0 ? static_cast<double>(r.ops) / r.seconds : 0);
  json += buf;
  json += "     \"ops_by_type\": [";
  bool first = true;
  for (size_t op = 0; op < kNumOps; ++op) {
    const LatencyHistogram& h = r.per_op[op];
    if (h.count() == 0) continue;
    if (!first) json += ", ";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"op\": \"%s\", \"count\": %llu, \"p50_us\": %llu, "
                  "\"p95_us\": %llu, \"p99_us\": %llu, \"max_us\": %llu}",
                  kOpNames[op], static_cast<unsigned long long>(h.count()),
                  static_cast<unsigned long long>(h.Percentile(50)),
                  static_cast<unsigned long long>(h.Percentile(95)),
                  static_cast<unsigned long long>(h.Percentile(99)),
                  static_cast<unsigned long long>(h.max_value()));
    json += buf;
  }
  json += "],\n     \"windows\": [";
  for (size_t w = 0; w < r.windows.size(); ++w) {
    const LatencyHistogram& h = r.windows[w];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"t_ms\": %llu, \"count\": %llu, \"p50_us\": %llu, "
                  "\"p99_us\": %llu}",
                  w == 0 ? "" : ", ",
                  static_cast<unsigned long long>(w * kWindowMs),
                  static_cast<unsigned long long>(h.count()),
                  static_cast<unsigned long long>(h.Percentile(50)),
                  static_cast<unsigned long long>(h.Percentile(99)));
    json += buf;
  }
  json += "]}";
  return json;
}

int Main(int argc, char** argv) {
  auto flags_or = ParseFlagArgs(argc, argv, 1);
  LSMSSD_CHECK(flags_or.ok()) << flags_or.status().ToString();
  const FlagMap& flags = *flags_or;
  if (Status st = CheckKnownFlags(
          flags, {"connect", "workloads", "records", "ops", "threads",
                  "soak-seconds", "shards", "json"});
      !st.ok()) {
    std::cerr << st.message() << "\n";
    return 2;
  }

  const double scale = Scale();
  const uint64_t records =
      FlagUint(flags, "records",
               std::max<uint64_t>(2000, static_cast<uint64_t>(20000 * scale)))
          .value();
  const uint64_t ops =
      FlagUint(flags, "ops",
               std::max<uint64_t>(2000, static_cast<uint64_t>(15000 * scale)))
          .value();
  const size_t threads =
      static_cast<size_t>(FlagUint(flags, "threads", 4).value());
  const double soak_seconds =
      FlagDouble(flags, "soak-seconds", 3.0 * scale).value();
  const size_t shards =
      static_cast<size_t>(FlagUint(flags, "shards", 1).value());
  const std::string workloads = FlagOr(flags, "workloads", "abcef");
  const std::string json_path =
      FlagOr(flags, "json", "BENCH_server_ycsb.json");
  LSMSSD_CHECK(threads > 0) << "--threads must be >= 1";

  std::cout << "== Extension: YCSB over the network protocol ==\n"
            << "   " << threads << " client connections, " << records
            << " records, " << ops << " ops per workload, soak "
            << soak_seconds << "s (LSMSSD_SCALE=" << scale << ")\n\n";

  // Target server: external (--connect) or embedded-with-maintenance.
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::unique_ptr<EmbeddedServer> embedded;
  if (flags.contains("connect")) {
    const std::string target = flags.at("connect");
    const size_t colon = target.rfind(':');
    LSMSSD_CHECK(colon != std::string::npos)
        << "--connect expects HOST:PORT, got " << target;
    host = target.substr(0, colon);
    port = static_cast<uint16_t>(
        std::strtoul(target.c_str() + colon + 1, nullptr, 10));
  } else {
    EmbeddedServerOptions eopts;
    eopts.dir = (std::filesystem::temp_directory_path() /
                 "lsmssd_server_ycsb_bench")
                    .string();
    eopts.shards = shards;
    eopts.background_compaction = true;
    eopts.checkpoint_wal_mb = 1;   // Checkpoints fire throughout the run.
    eopts.scrub_interval_ms = 25;  // Online scrub walks blocks all along.
    auto embedded_or = EmbeddedServer::Start(eopts);
    LSMSSD_CHECK(embedded_or.ok())
        << "embedded server: " << embedded_or.status().ToString();
    embedded = std::move(embedded_or).value();
    port = embedded->port();
  }

  // The store dictates the payload size; learn it over the wire.
  std::string value;
  {
    auto probe = MustConnect(host, port);
    auto stats_or = probe->Stats();
    LSMSSD_CHECK(stats_or.ok()) << stats_or.status().ToString();
    value.assign(stats_or->payload_size, 'y');
  }

  YcsbConfig load_cfg;
  load_cfg.initial_records = records;
  const auto load0 = std::chrono::steady_clock::now();
  LoadRecords(host, port, records, threads, value, load_cfg);
  const double load_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - load0)
          .count();
  std::cerr << "  [ycsb] loaded " << records << " records in "
            << load_seconds << "s\n";

  std::vector<PhaseResult> results;
  uint64_t seed_base = 1000;
  for (char w : workloads) {
    char normalized = 0;
    LSMSSD_CHECK(
        YcsbWorkload::ParseWorkloadName(std::string_view(&w, 1), &normalized))
        << "--workloads must draw from abcef, got '" << w << "'";
    results.push_back(RunPhase(host, port, normalized, records, ops, threads,
                               0, seed_base, value));
    seed_base += 1000;
    std::cerr << "  [ycsb] workload " << normalized << ": "
              << static_cast<uint64_t>(
                     results.back().seconds > 0
                         ? static_cast<double>(results.back().ops) /
                               results.back().seconds
                         : 0)
              << " ops/s, " << results.back().errors << " errors\n";
  }

  // Soak: sustained mixed load (workload A) against the same store while
  // scrub, background checkpoints, and compaction all stay active; the
  // windowed series shows what maintenance does to the tail.
  PhaseResult soak;
  if (soak_seconds > 0) {
    soak = RunPhase(host, port, 'a', records, 0, threads, soak_seconds,
                    seed_base, value);
    std::cerr << "  [ycsb] soak: " << soak.ops << " ops over "
              << soak.seconds << "s, " << soak.errors << " errors\n";
  }

  TablePrinter table({"workload", "ops", "ops_per_sec", "errors", "read_p99",
                      "write_p99", "scan_p99"});
  for (const PhaseResult& r : results) {
    const uint64_t write_p99 =
        std::max(r.per_op[1].Percentile(99), r.per_op[2].Percentile(99));
    table.AddRowValues(
        std::string(1, r.workload), r.ops,
        static_cast<uint64_t>(
            r.seconds > 0 ? static_cast<double>(r.ops) / r.seconds : 0),
        r.errors, r.per_op[0].Percentile(99), write_p99,
        r.per_op[3].Percentile(99));
  }
  table.Print(std::cout, "ext_server_ycsb");

  uint64_t total_errors = soak.errors;
  for (const PhaseResult& r : results) total_errors += r.errors;

  // Integrity epilogue: embedded mode stops the server and audits the
  // store; connect mode audits what the STATS opcode exposes.
  bool clean = true;
  std::string integrity_json;
  if (embedded) {
    auto report_or = embedded->Stop();
    LSMSSD_CHECK(report_or.ok()) << report_or.status().ToString();
    const EmbeddedServer::Report& rep = *report_or;
    clean = rep.scrub_corruptions == 0 && rep.quarantined_blocks == 0 &&
            rep.leak_check_ok && rep.connections_dropped_malformed == 0;
    const bool maintenance_ran =
        rep.scrub_blocks_verified > 0 && rep.checkpoints >= 2 &&
        rep.memtables_sealed > 0;
    std::cout << "\nintegrity: scrub_verified=" << rep.scrub_blocks_verified
              << " scrub_corruptions=" << rep.scrub_corruptions
              << " quarantined=" << rep.quarantined_blocks
              << " checkpoints=" << rep.checkpoints
              << " memtables_sealed=" << rep.memtables_sealed
              << " live_blocks=" << rep.live_blocks << "/"
              << rep.manifest_leaves << " leak_check="
              << (rep.leak_check_ok ? "ok" : "LEAK") << "\n";
    if (!maintenance_ran) {
      std::cout << "warning: maintenance barely ran (short scale?); the "
                   "soak claim needs scrub+checkpoint+compaction active\n";
    }
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  \"integrity\": {\"scrub_blocks_verified\": %llu, "
        "\"scrub_corruptions\": %llu, \"quarantined_blocks\": %llu, "
        "\"checkpoints\": %llu, \"memtables_sealed\": %llu, "
        "\"live_blocks\": %llu, \"manifest_leaves\": %llu, "
        "\"leak_check_ok\": %s, \"frames_processed\": %llu, "
        "\"connections_dropped_malformed\": %llu},\n",
        static_cast<unsigned long long>(rep.scrub_blocks_verified),
        static_cast<unsigned long long>(rep.scrub_corruptions),
        static_cast<unsigned long long>(rep.quarantined_blocks),
        static_cast<unsigned long long>(rep.checkpoints),
        static_cast<unsigned long long>(rep.memtables_sealed),
        static_cast<unsigned long long>(rep.live_blocks),
        static_cast<unsigned long long>(rep.manifest_leaves),
        rep.leak_check_ok ? "true" : "false",
        static_cast<unsigned long long>(rep.frames_processed),
        static_cast<unsigned long long>(rep.connections_dropped_malformed));
    integrity_json = buf;
  } else {
    auto probe = MustConnect(host, port);
    auto stats_or = probe->Stats();
    LSMSSD_CHECK(stats_or.ok()) << stats_or.status().ToString();
    clean = stats_or->quarantined_blocks == 0 &&
            stats_or->scrub_corruptions == 0;
    std::cout << "\nintegrity (remote): quarantined="
              << stats_or->quarantined_blocks
              << " scrub_corruptions=" << stats_or->scrub_corruptions
              << "\n";
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "  \"integrity\": {\"quarantined_blocks\": %llu, "
        "\"scrub_corruptions\": %llu, \"remote\": true},\n",
        static_cast<unsigned long long>(stats_or->quarantined_blocks),
        static_cast<unsigned long long>(stats_or->scrub_corruptions));
    integrity_json = buf;
  }

  std::string json = "{\n  \"bench\": \"server_ycsb\",\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"scale\": %g,\n  \"threads\": %zu,\n"
                  "  \"records\": %llu,\n  \"ops_per_workload\": %llu,\n"
                  "  \"window_ms\": %llu,\n  \"load_seconds\": %.3f,\n",
                  scale, threads, static_cast<unsigned long long>(records),
                  static_cast<unsigned long long>(ops),
                  static_cast<unsigned long long>(kWindowMs), load_seconds);
    json += buf;
  }
  json += "  \"workloads\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    json += PhaseJson(results[i], YcsbWorkload::MixString(results[i].workload));
    json += i + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  if (soak_seconds > 0) {
    json += "  \"soak\":\n" + PhaseJson(soak, "sustained A + maintenance") +
            ",\n";
  }
  json += integrity_json;
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  \"total_errors\": %llu\n",
                  static_cast<unsigned long long>(total_errors));
    json += buf;
  }
  json += "}\n";
  std::ofstream out(json_path);
  out << json;
  out.close();
  std::cerr << "  [ycsb] wrote " << json_path << "\n";

  if (total_errors > 0 || !clean) {
    std::cerr << "FAILED: " << total_errors << " request errors, store "
              << (clean ? "clean" : "NOT clean") << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace lsmssd::bench

int main(int argc, char** argv) {
  return lsmssd::bench::Main(argc, argv);
}
