// Figure 6 (a/b/c): steady-state write cost (blocks written per 1 MB of
// requests) across dataset sizes, for all seven merge policies, under
// Uniform, Normal(0.5%, 10k), and TPC with a 50/50 insert/delete mix.
//
// Paper shape to reproduce: Mixed lowest (or tied with ChooseBest);
// ChooseBest < Full everywhere; RR ~ ChooseBest under the skewless
// Uniform/TPC but clearly worse under Normal; costs rise with dataset
// size within a level count, then *dip* when the index gains its fourth
// level (the new bottom is almost empty, making full merges into it cheap).

#include <iostream>
#include <map>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

void RunWorkload(const std::string& tag, const WorkloadSpec& spec,
                 const std::vector<PolicySpec>& policies,
                 const std::vector<double>& sizes_mb, double window_mb) {
  const Options options = BenchOptions();
  std::vector<std::string> columns = {"dataset_mb", "levels"};
  for (const auto& p : policies) columns.push_back(p.name);
  TablePrinter table(columns);

  for (double size_mb : sizes_mb) {
    std::vector<std::string> row = {
        internal_table::FormatCell(size_mb)};
    std::string levels;
    for (const auto& policy : policies) {
      Experiment exp(options, policy, spec);
      Status st = exp.PrepareSteadyState(size_mb);
      LSMSSD_CHECK(st.ok()) << st.ToString();
      auto metrics = exp.Measure(window_mb);
      LSMSSD_CHECK(metrics.ok()) << metrics.status().ToString();
      row.push_back(internal_table::FormatCell(metrics->BlocksPerMb()));
      levels = std::to_string(exp.tree().num_levels());
    }
    row.insert(row.begin() + 1, levels);
    table.AddRow(row);
    std::cerr << "  [fig06-" << tag << "] " << size_mb << " MB done\n";
  }
  std::cout << "--- Figure 6" << tag << " ---\n";
  table.Print(std::cout, "fig06" + tag);
  std::cout << "\n";
}

void Main() {
  const double scale = ScaleFromEnv();
  const Options options = BenchOptions();
  PrintHeader("Figure 6",
              "steady-state blocks written per 1 MB of requests vs dataset "
              "size (50/50 insert/delete)",
              options);

  std::vector<double> sizes_mb;
  for (double s : {0.5, 1.0, 1.5, 2.0, 2.5, 3.5, 4.5}) {
    sizes_mb.push_back(s * scale);
  }
  const double window_mb = 2.0 * scale;

  WorkloadSpec uniform;
  uniform.kind = WorkloadKind::kUniform;
  RunWorkload("a-Uniform", uniform, SevenPolicies(), sizes_mb, window_mb);

  WorkloadSpec normal;
  normal.kind = WorkloadKind::kNormal;
  RunWorkload("b-Normal", normal, SevenPolicies(), sizes_mb, window_mb);

  // The paper's Figure 6c plots only the four block-preserving policies.
  WorkloadSpec tpc;
  tpc.kind = WorkloadKind::kTpc;
  RunWorkload("c-TPC", tpc, FourPreservingPolicies(), sizes_mb, window_mb);
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
