// Extension experiment: key–value separation crossover (DESIGN.md §11).
//
// An LSM merge rewrites every record it moves, so the write cost per MB
// of user data scales with the full payload size — at one record per
// block (1015-byte payloads on 1 KiB blocks) every level rewrite copies
// the whole dataset's bytes. With the value log on, the tree stores a
// fixed 16-byte pointer and merges move pointers only; the payload is
// written once to the vlog (plus GC rewrites for segments that still
// hold live values). Separation is not free at small payloads: the
// pointer plus the 17-byte vlog entry header can exceed the payload
// itself, and every read pays an extra hop — hence a crossover payload
// size below which inline storage wins.
//
// This bench replays Figure 9's payload sweep {15, 40, 105, 250, 1015}
// through the full Db (WAL + tree + vlog) in both modes and reports the
// end-to-end write cost: device block bytes + WAL bytes + vlog bytes
// (including one full GC pass) per byte of user data. The headline
// figures are the crossover payload and the cost ratio at 1015 B, gated
// >= 2x by scripts/check_vlog_crossover.sh.
//
// Results land on stdout (table) and in BENCH_vlog_crossover.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness/experiment.h"
#include "src/db/db.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace lsmssd::bench {
namespace {

/// Any payload at least this large goes to the vlog in separated mode.
/// 17 is the smallest legal threshold (it must exceed the 16-byte
/// pointer), so the whole fig09 sweep except 15 B takes the vlog path —
/// the 15 B point shows the regime where separation cannot engage.
constexpr uint64_t kVlogThreshold = 17;

struct ModeResult {
  uint64_t ops = 0;
  double seconds = 0;
  double puts_per_sec = 0;
  uint64_t device_bytes = 0;
  uint64_t wal_bytes = 0;
  uint64_t vlog_bytes = 0;
  uint64_t gc_rewrites = 0;
  double write_cost = 0;  ///< Written bytes per byte of user data.
};

DbOptions CrossoverOptions(size_t payload, bool separated) {
  DbOptions dbopts;
  dbopts.options = BenchOptions();
  dbopts.options.payload_size = payload;
  dbopts.options.annihilate_delete_put = false;  // Db requires it off.
  if (separated) dbopts.options.vlog_value_threshold = kVlogThreshold;
  dbopts.policy = PolicyKind::kChooseBest;
  // WAL fsyncs and checkpoints stay out of the measured loop so the
  // comparison isolates bytes written, not sync scheduling; the final
  // GC + checkpoint runs inside the measured window for both modes.
  dbopts.wal_sync_mode = WalSyncMode::kNone;
  dbopts.checkpoint_wal_bytes = 0;
  dbopts.background_checkpoint = false;
  return dbopts;
}

// Both modes replay the identical op sequence: `grow` and `window` are
// counted against the *logical* record size (key + full payload), never
// the stored size — in vlog mode record_size() shrinks to the pointer
// width and would triple the op count for the same "MB".
ModeResult MeasureMode(size_t payload, bool separated, uint64_t grow,
                       uint64_t window, const std::string& dir) {
  std::filesystem::remove_all(dir);
  const DbOptions dbopts = CrossoverOptions(payload, separated);
  const Options& options = dbopts.options;
  auto db_or = Db::Open(dbopts, dir);
  LSMSSD_CHECK(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();

  const std::string value(options.payload_size, 'x');
  const Key key_space = static_cast<Key>(grow) * 4;
  {
    Random rng(17);
    for (uint64_t i = 0; i < grow; ++i) {
      LSMSSD_CHECK(db.Put(rng.Uniform(key_space) + 1, value).ok());
    }
  }
  const DbStats before = db.Stats();

  Random rng(101);
  const auto w0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < window; ++i) {
    LSMSSD_CHECK(db.Put(rng.Uniform(key_space) + 1, value).ok());
  }
  // End-to-end accounting: the separated mode must pay for reclaiming
  // its dead vlog ranges, the inline mode for the equivalent checkpoint.
  LSMSSD_CHECK(db.CompactVlog().ok());
  LSMSSD_CHECK(db.Checkpoint().ok());
  const auto w1 = std::chrono::steady_clock::now();
  const DbStats after = db.Stats();

  ModeResult r;
  r.ops = window;
  r.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(w1 - w0)
          .count();
  r.puts_per_sec = r.seconds > 0 ? static_cast<double>(r.ops) / r.seconds : 0;
  r.device_bytes = (after.io.block_writes() - before.io.block_writes()) *
                   options.block_size;
  r.wal_bytes = after.wal_bytes_appended - before.wal_bytes_appended;
  r.vlog_bytes = after.vlog_bytes_appended - before.vlog_bytes_appended;
  r.gc_rewrites = after.vlog_gc_rewrites - before.vlog_gc_rewrites;
  const double user_bytes =
      static_cast<double>(window) *
      static_cast<double>(options.key_size + options.payload_size);
  r.write_cost = static_cast<double>(r.device_bytes + r.wal_bytes +
                                     r.vlog_bytes) /
                 user_bytes;
  db.Close();
  std::filesystem::remove_all(dir);
  return r;
}

void Main() {
  const double scale = ScaleFromEnv();
  const Options base = BenchOptions();
  PrintHeader("Extension: vlog crossover",
              "end-to-end write cost (device + WAL + vlog bytes per user "
              "byte) vs payload size, inline vs key-value separated "
              "(fig09 sweep through the full Db)",
              base);

  const double dataset_mb = 1.5 * scale;
  const double window_mb = 2.0 * scale;
  const std::vector<size_t> payloads = {15, 40, 105, 250, 1015};
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lsmssd_vlog_crossover_bench")
          .string();

  struct Row {
    size_t payload;
    ModeResult inline_r, vlog_r;
    double ratio;  ///< inline write cost / separated write cost.
  };
  std::vector<Row> rows;
  for (size_t payload : payloads) {
    // Op counts from the inline (logical) record size, shared by both
    // modes so they replay the same sequence.
    Options logical = base;
    logical.payload_size = payload;
    const uint64_t grow = RecordsForMb(logical, dataset_mb);
    const uint64_t window = RecordsForMb(logical, window_mb);
    Row row;
    row.payload = payload;
    row.inline_r = MeasureMode(payload, /*separated=*/false, grow, window, dir);
    row.vlog_r = MeasureMode(payload, /*separated=*/true, grow, window, dir);
    row.ratio = row.vlog_r.write_cost > 0
                    ? row.inline_r.write_cost / row.vlog_r.write_cost
                    : 0;
    rows.push_back(row);
    std::cerr << "  [ext-vlog] payload=" << payload << " done (inline "
              << row.inline_r.write_cost << "x vs vlog "
              << row.vlog_r.write_cost << "x user bytes)\n";
  }

  TablePrinter table({"payload_bytes", "inline_cost", "vlog_cost",
                      "inline_over_vlog", "vlog_gc_rewrites",
                      "inline_puts_s", "vlog_puts_s"});
  for (const Row& r : rows) {
    table.AddRowValues(r.payload, r.inline_r.write_cost, r.vlog_r.write_cost,
                       r.ratio, r.vlog_r.gc_rewrites,
                       static_cast<uint64_t>(r.inline_r.puts_per_sec),
                       static_cast<uint64_t>(r.vlog_r.puts_per_sec));
  }
  table.Print(std::cout, "ext_vlog_crossover");

  // The crossover: smallest swept payload where separation wins.
  size_t crossover = 0;
  for (const Row& r : rows) {
    if (r.ratio > 1.0) {
      crossover = r.payload;
      break;
    }
  }
  double win_1015 = 0;
  for (const Row& r : rows) {
    if (r.payload == 1015) win_1015 = r.ratio;
  }
  std::cout << "\nshape check: below the threshold the vlog cannot engage "
               "(15 B < 17 B) and the two modes coincide; once payloads "
               "dwarf the 16-byte pointer, merges move pointers instead "
               "of payloads and the inline/vlog cost ratio grows toward "
               "the records-per-block collapse at 1015 B. Crossover: "
            << crossover << " B; 1015 B win: " << win_1015 << "x\n";

  std::string json = "{\n  \"bench\": \"ext_vlog_crossover\",\n";
  {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  \"scale\": %g,\n  \"vlog_threshold\": %llu,\n",
                  scale, static_cast<unsigned long long>(kVlogThreshold));
    json += buf;
  }
  json += "  \"sweep\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    auto mode_json = [](const ModeResult& m) {
      char buf[320];
      std::snprintf(
          buf, sizeof(buf),
          "{\"ops\": %llu, \"seconds\": %.3f, \"puts_per_sec\": %.1f, "
          "\"device_bytes\": %llu, \"wal_bytes\": %llu, "
          "\"vlog_bytes\": %llu, \"gc_rewrites\": %llu, "
          "\"write_cost\": %.3f}",
          static_cast<unsigned long long>(m.ops), m.seconds, m.puts_per_sec,
          static_cast<unsigned long long>(m.device_bytes),
          static_cast<unsigned long long>(m.wal_bytes),
          static_cast<unsigned long long>(m.vlog_bytes),
          static_cast<unsigned long long>(m.gc_rewrites), m.write_cost);
      return std::string(buf);
    };
    char head[64];
    std::snprintf(head, sizeof(head), "    {\"payload_bytes\": %zu,\n",
                  r.payload);
    json += head;
    json += "     \"inline\": " + mode_json(r.inline_r) + ",\n";
    json += "     \"vlog\": " + mode_json(r.vlog_r) + ",\n";
    char tail[64];
    std::snprintf(tail, sizeof(tail), "     \"cost_ratio\": %.3f}%s\n",
                  r.ratio, i + 1 < rows.size() ? "," : "");
    json += tail;
  }
  json += "  ],\n";
  {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "  \"crossover_payload_bytes\": %zu,\n"
                  "  \"win_1015\": %.2f\n",
                  crossover, win_1015);
    json += buf;
  }
  json += "}\n";

  const char* json_path = "BENCH_vlog_crossover.json";
  std::ofstream out(json_path);
  out << json;
  out.close();
  std::cerr << "  [ext-vlog] wrote " << json_path << "\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
