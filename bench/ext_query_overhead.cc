// Extension experiment (paper technical report): query overhead of
// relaxed level storage. The TR reports that partial merges and relaxed
// (non-compact) levels introduce little lookup/range-query overhead even
// against Full-P, which keeps levels maximally compact. We measure point
// lookups (hit and miss) and range scans against steady-state indexes
// under each policy, with and without per-leaf Bloom filters.

#include <chrono>
#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

struct QueryCosts {
  double reads_per_hit = 0;
  double reads_per_miss = 0;
  double reads_per_scan = 0;
  double scan_seconds_per_k = 0;
};

QueryCosts MeasureQueries(Experiment* exp, uint64_t probes) {
  LsmTree& tree = exp->tree();
  Random rng(4242);
  const Key key_max = 1'000'000'000;
  QueryCosts costs;

  // Point lookups on existing keys: sample via the iterator.
  std::vector<Key> live;
  {
    auto it = tree.NewIterator();
    for (it->SeekToFirst(); it->Valid() && live.size() < 50'000;
         it->Next()) {
      live.push_back(it->key());
    }
  }
  auto& io = exp->device().stats();
  uint64_t before = io.block_reads();
  for (uint64_t i = 0; i < probes; ++i) {
    (void)tree.Get(live[rng.Uniform(live.size())]);
  }
  costs.reads_per_hit =
      static_cast<double>(io.block_reads() - before) / probes;

  // Misses: random keys (hit probability ~ dataset/1e9, negligible).
  before = io.block_reads();
  for (uint64_t i = 0; i < probes; ++i) {
    (void)tree.Get(rng.Uniform(key_max));
  }
  costs.reads_per_miss =
      static_cast<double>(io.block_reads() - before) / probes;

  // Range scans of ~1000 consecutive live keys.
  before = io.block_reads();
  const auto t0 = std::chrono::steady_clock::now();
  const int scans = 50;
  for (int i = 0; i < scans; ++i) {
    const Key start = live[rng.Uniform(live.size())];
    auto it = tree.NewIterator();
    int n = 0;
    for (it->Seek(start); it->Valid() && n < 1000; it->Next()) ++n;
  }
  const auto t1 = std::chrono::steady_clock::now();
  costs.reads_per_scan =
      static_cast<double>(io.block_reads() - before) / scans;
  costs.scan_seconds_per_k =
      std::chrono::duration<double>(t1 - t0).count() / scans;
  return costs;
}

void Main() {
  const double scale = ScaleFromEnv();
  PrintHeader("Extension: query overhead",
              "lookup/scan cost on steady-state indexes per policy, with "
              "and without per-leaf Bloom filters",
              BenchOptions());

  const double dataset_mb = 1.5 * scale;
  const uint64_t probes = static_cast<uint64_t>(20'000 * scale);

  TablePrinter table({"policy", "bloom", "reads_per_hit", "reads_per_miss",
                      "reads_per_1k_scan", "ms_per_1k_scan"});
  for (const auto& policy : std::vector<PolicySpec>{
           {"Full-P", PolicyKind::kFull, false},
           {"RR", PolicyKind::kRr, true},
           {"ChooseBest", PolicyKind::kChooseBest, true},
           {"TestMixed", PolicyKind::kTestMixed, true}}) {
    for (size_t bloom : {size_t{0}, size_t{10}}) {
      Options options = BenchOptions();
      options.bloom_bits_per_key = bloom;
      WorkloadSpec spec;
      spec.kind = WorkloadKind::kUniform;
      Experiment exp(options, policy, spec);
      Status st = exp.PrepareSteadyState(dataset_mb);
      LSMSSD_CHECK(st.ok()) << st.ToString();
      const QueryCosts costs = MeasureQueries(&exp, probes);
      table.AddRowValues(policy.name, bloom, costs.reads_per_hit,
                         costs.reads_per_miss, costs.reads_per_scan,
                         costs.scan_seconds_per_k * 1000.0);
      std::cerr << "  [ext-query] " << policy.name << " bloom=" << bloom
                << " done\n";
    }
  }
  table.Print(std::cout, "ext_query_overhead");
  std::cout << "\nTR shape check: partial policies read within ~1 block of "
               "Full-P per query (little overhead); Bloom filters collapse "
               "miss reads toward zero for every policy.\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
