#ifndef LSMSSD_BENCH_HARNESS_EMBEDDED_SERVER_H_
#define LSMSSD_BENCH_HARNESS_EMBEDDED_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/status.h"
#include "src/util/statusor.h"

namespace lsmssd::bench {

/// Configuration for an in-process bench server (Db + net::Server on a
/// loopback ephemeral port).
struct EmbeddedServerOptions {
  std::string dir;          ///< Db directory (created; wiped on Start).
  size_t shards = 1;
  size_t server_workers = 4;
  /// Maintenance knobs for soak runs: a non-zero scrub cadence keeps the
  /// online scrubber walking blocks during the workload, and a small
  /// checkpoint threshold keeps background checkpoints firing.
  uint64_t scrub_interval_ms = 0;
  uint64_t checkpoint_wal_mb = 8;
  bool background_compaction = true;
  /// Overload knobs (pass-through to net::ServerOptions); 0 = default.
  size_t max_pending_frames = 0;
  uint32_t overload_retry_after_ms = 0;
  /// Fixed port (0 = ephemeral). A chaos restart re-binds the port the
  /// clients already hold (SO_REUSEADDR makes the re-bind immediate).
  uint16_t port = 0;
  /// False = recover from an existing dir instead of wiping it — the
  /// restart half of a kill/restart cycle.
  bool wipe_dir = true;
  /// Sync the WAL on every commit instead of group-commit kEveryN. The
  /// chaos soak needs acked == durable for its lost-write oracle.
  bool wal_sync_always = false;
};

/// An lsmssd server running inside the bench process. This header
/// deliberately exposes no Db (or any engine) type: binaries that link
/// it talk to the store exclusively through src/net/client.h, which is
/// what keeps the YCSB bench an honest network client. The engine lives
/// behind the pimpl in embedded_server.cc.
class EmbeddedServer {
 public:
  /// Integrity epilogue produced by Stop(): did the sustained load leave
  /// the store clean?
  struct Report {
    uint64_t frames_processed = 0;
    uint64_t connections_dropped_malformed = 0;
    uint64_t checkpoints = 0;        ///< Includes background checkpoints.
    uint64_t memtables_sealed = 0;
    uint64_t scrub_blocks_verified = 0;
    uint64_t scrub_corruptions = 0;  ///< Must be 0 on healthy hardware.
    uint64_t quarantined_blocks = 0; ///< Must be 0.
    /// Block accounting after the final checkpoint: every live device
    /// block is referenced by exactly one leaf (summed across shards).
    uint64_t live_blocks = 0;
    uint64_t manifest_leaves = 0;
    bool leak_check_ok = false;      ///< live_blocks == manifest_leaves.
  };

  /// Wipes opts.dir, opens a fresh Db there, and serves it on
  /// 127.0.0.1:<ephemeral>.
  static StatusOr<std::unique_ptr<EmbeddedServer>> Start(
      const EmbeddedServerOptions& opts);
  ~EmbeddedServer();  ///< Stops (discarding the report) if still running.

  uint16_t port() const;

  /// Graceful shutdown: drains the server, waits out queued compaction,
  /// takes a final checkpoint, runs a full synchronous scrub, and
  /// leak-checks device blocks against the tree. The Db directory is
  /// removed afterwards.
  StatusOr<Report> Stop();

  /// Chaos kill: abruptly stops the server (connections dropped, no
  /// drain) and closes the Db WITHOUT a final checkpoint, leaving the
  /// directory behind — recovery must come from the WAL + last
  /// checkpoint, exactly as after a process kill. Restart with
  /// Start(wipe_dir=false, same dir, same port).
  Status Kill();

 private:
  struct Impl;
  EmbeddedServer();
  std::unique_ptr<Impl> impl_;
};

}  // namespace lsmssd::bench

#endif  // LSMSSD_BENCH_HARNESS_EMBEDDED_SERVER_H_
