#include "bench/harness/experiment.h"

#include <cstdlib>
#include <iostream>

#include "src/util/logging.h"

namespace lsmssd::bench {

double ScaleFromEnv() {
  const char* scale = std::getenv("LSMSSD_SCALE");
  if (scale == nullptr) return 1.0;
  const double v = std::atof(scale);
  return v > 0 ? v : 1.0;
}

Options BenchOptions() {
  Options options;
  options.block_size = 1024;
  options.key_size = 4;
  options.payload_size = 40;  // 45-byte records -> B = 22.
  options.level0_capacity_blocks = 25;
  options.gamma = 10.0;
  options.epsilon = 0.2;
  options.delta = 0.07;
  options.preserve_blocks = true;
  // The paper's consolidation rule; all three workloads draw insert keys
  // from un-indexed keys, which makes it safe (see Options).
  options.annihilate_delete_put = true;
  return options;
}

std::vector<PolicySpec> SevenPolicies() {
  return {
      {"Full-P", PolicyKind::kFull, false},
      {"Full", PolicyKind::kFull, true},
      {"RR-P", PolicyKind::kRr, false},
      {"RR", PolicyKind::kRr, true},
      {"ChooseBest-P", PolicyKind::kChooseBest, false},
      {"ChooseBest", PolicyKind::kChooseBest, true},
      {"Mixed", PolicyKind::kMixed, true},
  };
}

std::vector<PolicySpec> FourPreservingPolicies() {
  return {
      {"Full", PolicyKind::kFull, true},
      {"RR", PolicyKind::kRr, true},
      {"ChooseBest", PolicyKind::kChooseBest, true},
      {"Mixed", PolicyKind::kMixed, true},
  };
}

std::unique_ptr<Workload> MakeWorkload(const WorkloadSpec& spec) {
  switch (spec.kind) {
    case WorkloadKind::kUniform: {
      UniformWorkload::Params p;
      p.key_max = 1'000'000'000;  // Paper: keys in [0, 1e9].
      p.insert_ratio = spec.insert_ratio;
      p.seed = spec.seed;
      return std::make_unique<UniformWorkload>(p);
    }
    case WorkloadKind::kNormal: {
      NormalWorkload::Params p;
      p.key_max = 1'000'000'000;
      p.sigma_fraction = spec.sigma_fraction;
      p.omega = spec.omega;
      p.insert_ratio = spec.insert_ratio;
      p.seed = spec.seed;
      return std::make_unique<NormalWorkload>(p);
    }
    case WorkloadKind::kTpc: {
      TpcWorkload::Params p;
      p.warehouses = 16;
      p.districts_per_warehouse = 10;
      p.insert_ratio = spec.insert_ratio;
      p.seed = spec.seed;
      return std::make_unique<TpcWorkload>(p);
    }
  }
  LSMSSD_CHECK(false);
  return nullptr;
}

uint64_t RecordsForMb(const Options& options, double mb) {
  return static_cast<uint64_t>(mb * 1024.0 * 1024.0 /
                               static_cast<double>(options.record_size()));
}

double MbForRecords(const Options& options, uint64_t records) {
  return static_cast<double>(records * options.record_size()) /
         (1024.0 * 1024.0);
}

Experiment::Experiment(const Options& options, const PolicySpec& policy,
                       const WorkloadSpec& workload)
    : options_(options), policy_(policy), device_(options.block_size) {
  options_.preserve_blocks = policy.preserve;
  auto tree_or =
      LsmTree::Open(options_, &device_, CreatePolicy(policy.kind));
  LSMSSD_CHECK(tree_or.ok()) << tree_or.status().ToString();
  tree_ = std::move(tree_or).value();
  WorkloadSpec ws = workload;
  workload_ = MakeWorkload(ws);
  workload_spec_ = ws;
  driver_ = std::make_unique<WorkloadDriver>(tree_.get(), workload_.get());
}

Status Experiment::PrepareSteadyState(double dataset_mb) {
  LSMSSD_RETURN_IF_ERROR(driver_->GrowTo(
      RecordsForMb(options_, dataset_mb) * options_.record_size()));
  LSMSSD_RETURN_IF_ERROR(
      driver_->ReachSteadyState(workload_spec_.insert_ratio));

  if (policy_.kind == PolicyKind::kMixed) {
    // The paper waits until Mixed has learned its parameters and operates
    // with the optimal settings (Section V-A). Learn on the live stream,
    // then install the learned policy and restabilize.
    auto params_or =
        MixedLearner::Learn(tree_.get(), driver_->RequestFn());
    LSMSSD_RETURN_IF_ERROR(params_or.status());
    learned_ = params_or.value();
    tree_->set_policy(std::make_unique<MixedPolicy>(learned_));
    LSMSSD_RETURN_IF_ERROR(
        driver_->ReachSteadyState(workload_spec_.insert_ratio));
  }
  return Status::OK();
}

Status Experiment::PrepareEmptyInsertOnly() {
  workload_->set_insert_ratio(1.0);
  if (policy_.kind == PolicyKind::kMixed) {
    // Figure 10 uses the thresholds learned for the steady-state runs; a
    // fresh insert-only index has nothing to learn from yet, so start from
    // TestMixed-style defaults (full merges into the bottom).
    MixedParams params;
    params.beta = true;
    learned_ = params;
    tree_->set_policy(std::make_unique<MixedPolicy>(params));
  }
  return Status::OK();
}

StatusOr<WindowMetrics> Experiment::Measure(double window_mb) {
  return driver_->MeasureWindow(static_cast<uint64_t>(
      RecordsForMb(options_, window_mb) * options_.record_size()));
}

void PrintHeader(const std::string& figure, const std::string& what,
                 const Options& options) {
  std::cout << "== " << figure << ": " << what << " ==\n"
            << "   (Thonangi & Yang, ICDE 2017 — scaled reproduction; "
               "LSMSSD_SCALE=" << ScaleFromEnv() << ")\n"
            << "   config: block=" << options.block_size
            << "B payload=" << options.payload_size
            << "B B=" << options.records_per_block()
            << " K0=" << options.level0_capacity_blocks
            << " blocks, Gamma=" << options.gamma
            << ", epsilon=" << options.epsilon
            << ", delta=" << options.delta << "\n\n";
}

}  // namespace lsmssd::bench
