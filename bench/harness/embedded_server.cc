#include "bench/harness/embedded_server.h"

#include <filesystem>
#include <utility>

#include "bench/harness/experiment.h"
#include "src/db/db.h"
#include "src/net/server.h"

namespace lsmssd::bench {

struct EmbeddedServer::Impl {
  std::string dir;
  std::unique_ptr<Db> db;
  std::unique_ptr<net::Server> server;
};

EmbeddedServer::EmbeddedServer() : impl_(std::make_unique<Impl>()) {}

EmbeddedServer::~EmbeddedServer() {
  if (impl_ && impl_->server) Stop();
}

uint16_t EmbeddedServer::port() const { return impl_->server->port(); }

StatusOr<std::unique_ptr<EmbeddedServer>> EmbeddedServer::Start(
    const EmbeddedServerOptions& opts) {
  if (opts.dir.empty()) {
    return Status::InvalidArgument("EmbeddedServerOptions::dir is required");
  }
  if (opts.wipe_dir) std::filesystem::remove_all(opts.dir);

  DbOptions dbopts;
  dbopts.options = BenchOptions();
  dbopts.options.annihilate_delete_put = false;  // Db requires it off.
  if (opts.wal_sync_always) {
    // Chaos soak: an acked write must be durable at the moment of the
    // ack, or the lost-write oracle has nothing to hold the server to.
    dbopts.wal_sync_mode = WalSyncMode::kAlways;
  } else {
    // Group commit: concurrent client connections (one worker each) batch
    // their WAL syncs — the regime the server exists to exercise.
    dbopts.wal_sync_mode = WalSyncMode::kEveryN;
    dbopts.wal_sync_every_n = 64;
  }
  dbopts.checkpoint_wal_bytes = opts.checkpoint_wal_mb * 1024 * 1024;
  dbopts.background_compaction = opts.background_compaction;
  dbopts.shards = opts.shards;
  dbopts.scrub_interval_ms = opts.scrub_interval_ms;

  auto db_or = Db::Open(dbopts, opts.dir);
  if (!db_or.ok()) return db_or.status();

  std::unique_ptr<EmbeddedServer> es(new EmbeddedServer());
  es->impl_->dir = opts.dir;
  es->impl_->db = std::move(db_or).value();

  net::ServerOptions sopts;
  sopts.workers = opts.server_workers;
  sopts.port = opts.port;
  if (opts.max_pending_frames != 0) {
    sopts.max_pending_frames = opts.max_pending_frames;
  }
  if (opts.overload_retry_after_ms != 0) {
    sopts.overload_retry_after_ms = opts.overload_retry_after_ms;
  }
  auto server_or = net::Server::Start(sopts, es->impl_->db.get());
  if (!server_or.ok()) return server_or.status();
  es->impl_->server = std::move(server_or).value();
  return es;
}

StatusOr<EmbeddedServer::Report> EmbeddedServer::Stop() {
  Impl& impl = *impl_;
  if (!impl.server) {
    return Status::FailedPrecondition("EmbeddedServer already stopped");
  }
  impl.server->Drain(/*deadline_ms=*/5000);
  const net::ServerCounters counters = impl.server->counters();
  Db& db = *impl.db;

  // Drain queued compaction work, then checkpoint: the checkpoint also
  // recycles deferred frees, so the leak check below is exact.
  LSMSSD_RETURN_IF_ERROR(db.WaitForCompaction());
  LSMSSD_RETURN_IF_ERROR(db.Checkpoint());
  // Full synchronous scrub on top of whatever the online scrubber
  // already covered: every manifest-live block is verified once more.
  LSMSSD_RETURN_IF_ERROR(db.Scrub());

  Report report;
  report.frames_processed = counters.frames_processed;
  report.connections_dropped_malformed =
      counters.connections_dropped_malformed;
  const DbStats stats = db.Stats();
  report.checkpoints = stats.checkpoints;
  report.memtables_sealed = stats.memtables_sealed;
  report.scrub_blocks_verified = stats.scrub_blocks_verified;
  report.scrub_corruptions = stats.scrub_corruptions_found;
  report.quarantined_blocks = stats.quarantined_blocks.size();

  // Zero leaked blocks: every live device block is referenced by exactly
  // one leaf (per shard; the facade has no device of its own).
  for (size_t s = 0; s < db.shard_count(); ++s) {
    LsmTree& tree = db.shard_count() == 1 ? *db.tree() : *db.shard(s)->tree();
    report.live_blocks += tree.device()->live_blocks();
    for (size_t i = 1; i < tree.num_levels(); ++i) {
      report.manifest_leaves += tree.level(i).num_leaves();
    }
  }
  report.leak_check_ok = report.live_blocks == report.manifest_leaves;

  impl.server.reset();
  impl.db->Close();
  impl.db.reset();
  std::filesystem::remove_all(impl.dir);
  return report;
}

Status EmbeddedServer::Kill() {
  Impl& impl = *impl_;
  if (!impl.server) {
    return Status::FailedPrecondition("EmbeddedServer already stopped");
  }
  // Abrupt: connections are cut with whatever was in flight, no drain,
  // no final checkpoint, and the directory survives for the restart to
  // recover from (WAL replay + last checkpoint).
  impl.server->Stop();
  impl.server.reset();
  impl.db->Close();
  impl.db.reset();
  return Status::OK();
}

}  // namespace lsmssd::bench
