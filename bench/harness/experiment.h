#ifndef LSMSSD_BENCH_HARNESS_EXPERIMENT_H_
#define LSMSSD_BENCH_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/lsm/lsm_tree.h"
#include "src/policy/mixed_learner.h"
#include "src/policy/policy_factory.h"
#include "src/storage/mem_block_device.h"
#include "src/util/table_printer.h"
#include "src/workload/driver.h"
#include "src/workload/normal_workload.h"
#include "src/workload/tpc_workload.h"
#include "src/workload/uniform_workload.h"

namespace lsmssd::bench {

/// Experiment scale multiplier from the LSMSSD_SCALE environment variable
/// (default 1.0). Dataset sizes and measurement windows scale with it;
/// structural knobs (Gamma, epsilon, delta) do not. Raise it to push the
/// experiments toward the paper's dataset sizes.
double ScaleFromEnv();

/// The benchmark tree configuration: the paper's setup (4 KB blocks,
/// 100-byte payloads, Gamma=10, epsilon=0.2, delta=0.07) shrunk to laptop
/// scale — 1 KiB blocks, 40-byte payloads (B=22), K0=25 blocks — so the
/// 3-to-4-level transition that shapes Figure 6 happens within a few MB
/// instead of 1.6 GB. See DESIGN.md "Substitutions".
Options BenchOptions();

/// One of the seven policies of the paper's evaluation (Section V):
/// Full-P, Full, RR-P, RR, ChooseBest-P, ChooseBest, Mixed. The "-P"
/// variants disable block-preserving merges.
struct PolicySpec {
  std::string name;
  PolicyKind kind = PolicyKind::kFull;
  bool preserve = true;
};

/// All seven, in the paper's legend order.
std::vector<PolicySpec> SevenPolicies();

/// The four block-preserving policies (Figure 6c plots only these).
std::vector<PolicySpec> FourPreservingPolicies();

enum class WorkloadKind { kUniform, kNormal, kTpc };

struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kUniform;
  double insert_ratio = 0.5;
  /// Normal parameters (paper defaults).
  double sigma_fraction = 0.005;
  uint64_t omega = 10'000;
  uint64_t seed = 1;
};

std::unique_ptr<Workload> MakeWorkload(const WorkloadSpec& spec);

/// Converts between request volume in MB (the paper's x-axes) and record
/// counts under `options`.
uint64_t RecordsForMb(const Options& options, double mb);
double MbForRecords(const Options& options, uint64_t records);

/// A fully assembled experiment instance: device + tree + workload +
/// driver, with the Mixed learning protocol built in.
class Experiment {
 public:
  Experiment(const Options& options, const PolicySpec& policy,
             const WorkloadSpec& workload);

  /// Grow with inserts to `dataset_mb`, switch to the steady mix, run the
  /// paper's steady-state protocol, and — for Mixed — learn parameters
  /// before declaring readiness.
  Status PrepareSteadyState(double dataset_mb);

  /// Insert-only preparation (Figure 10): no steady-state wait.
  Status PrepareEmptyInsertOnly();

  /// Measures blocks-written-per-MB (and time) over `window_mb` of
  /// requests.
  StatusOr<WindowMetrics> Measure(double window_mb);

  LsmTree& tree() { return *tree_; }
  WorkloadDriver& driver() { return *driver_; }
  Workload& workload() { return *workload_; }
  MemBlockDevice& device() { return device_; }
  const Options& options() const { return options_; }
  const PolicySpec& policy_spec() const { return policy_; }
  const MixedParams& learned_params() const { return learned_; }

 private:
  Options options_;
  PolicySpec policy_;
  WorkloadSpec workload_spec_;
  MemBlockDevice device_;
  std::unique_ptr<LsmTree> tree_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<WorkloadDriver> driver_;
  MixedParams learned_;
};

/// Prints the standard bench prologue (config, scale, paper reference).
void PrintHeader(const std::string& figure, const std::string& what,
                 const Options& options);

}  // namespace lsmssd::bench

#endif  // LSMSSD_BENCH_HARNESS_EXPERIMENT_H_
