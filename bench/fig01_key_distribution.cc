// Figure 1: key-density snapshot of the two lowest levels of a 3-level
// index under a partial merge policy running a uniform insert/delete mix.
//
// Paper shape to reproduce: the bottom level (most of the data) mirrors
// the workload's uniform distribution, while L1 is skewed — sparsest just
// behind the next-merge cursor (recently merged) and densest ahead of it.

#include <iostream>

#include "bench/harness/experiment.h"
#include "src/util/histogram.h"

namespace lsmssd::bench {
namespace {

constexpr Key kKeyMax = 1'000'000'000;
constexpr size_t kBuckets = 100;  // The paper divides the key space in 100.

void FillHistogram(const Level& level, Histogram* h) {
  for (size_t i = 0; i < level.num_leaves(); ++i) {
    auto leaf = level.ReadLeaf(i);
    LSMSSD_CHECK(leaf.ok());
    for (const auto& r : leaf.value()) h->Add(r.key);
  }
}

void Main() {
  const double scale = ScaleFromEnv();
  const Options options = BenchOptions();
  PrintHeader("Figure 1",
              "key distribution in L1 vs the bottom level under partial "
              "merges (uniform 50/50 mix, random instant)",
              options);

  WorkloadSpec spec;
  spec.kind = WorkloadKind::kUniform;
  PolicySpec policy{"ChooseBest", PolicyKind::kChooseBest, true};
  Experiment exp(options, policy, spec);
  Status st = exp.PrepareSteadyState(1.5 * scale);
  LSMSSD_CHECK(st.ok()) << st.ToString();
  // Advance to a "random time instant" mid-steady-state.
  LSMSSD_CHECK(exp.Measure(1.0 * scale).ok());

  LsmTree& tree = exp.tree();
  LSMSSD_CHECK(tree.num_levels() >= 3u);
  const size_t bottom = tree.num_levels() - 1;

  Histogram l1(0, kKeyMax, kBuckets);
  Histogram lb(0, kKeyMax, kBuckets);
  FillHistogram(tree.level(1), &l1);
  FillHistogram(tree.level(bottom), &lb);

  TablePrinter table({"bucket_low", "L1_freq", "Lbottom_freq"});
  for (size_t i = 0; i < kBuckets; ++i) {
    table.AddRowValues(l1.BucketLow(i), l1.Frequency(i), lb.Frequency(i));
  }
  table.Print(std::cout, "fig01");

  std::cout << "\nskew summary (coefficient of variation of bucket "
               "frequencies; 0 = perfectly flat):\n"
            << "  L1      cv = " << l1.FrequencyCv() << "\n"
            << "  L" << bottom << " (bottom) cv = " << lb.FrequencyCv()
            << "\n"
            << "paper shape check: L1 skewed, bottom flat -> expect "
               "cv(L1) >> cv(bottom): "
            << (l1.FrequencyCv() > 2.0 * lb.FrequencyCv() ? "OK" : "MISS")
            << "\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
