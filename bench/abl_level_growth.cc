// Ablation: strategic level creation. Figure 6 shows a counter-intuitive
// cost *drop* when the index gains its fourth level — full merges into
// the relatively empty new bottom are extremely cost-effective. The paper
// asks (Section V-A) "whether we can increase the number of levels
// strategically to gain performance in certain situations". This
// experiment answers it: at dataset sizes where the natural 3-level tree
// is getting full, pre-creating L4 (Options::initial_levels) and letting
// a full-merging policy exploit the empty bottom cuts steady-state
// writes; at small sizes the extra depth is pure overhead.
//
// Protocol note: the deep forced tree never accumulates a full
// second-to-last level, so instead of the Figure 6 steady-state wait we
// warm both configurations up with the same fixed request volume (2x the
// dataset) before measuring.

#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

double Measure(const PolicySpec& policy, size_t initial_levels,
               double dataset_mb, double window_mb, size_t* levels_out) {
  Options options = BenchOptions();
  options.initial_levels = initial_levels;
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kUniform;
  Experiment exp(options, policy, spec);
  LSMSSD_CHECK(exp.driver()
                   .GrowTo(RecordsForMb(options, dataset_mb) *
                           options.record_size())
                   .ok());
  exp.workload().set_insert_ratio(0.5);
  LSMSSD_CHECK(
      exp.driver().Run(2 * RecordsForMb(options, dataset_mb)).ok());
  auto metrics = exp.Measure(window_mb);
  LSMSSD_CHECK(metrics.ok());
  *levels_out = exp.tree().num_levels();
  return metrics->BlocksPerMb();
}

void Main() {
  const double scale = ScaleFromEnv();
  PrintHeader("Ablation: strategic level growth",
              "natural growth vs pre-created deeper bottom level "
              "(Uniform 50/50)",
              BenchOptions());

  const double window_mb = 2.0 * scale;
  TablePrinter table({"dataset_mb", "policy", "natural_levels",
                      "natural_cost", "forced4_cost", "gain_pct"});
  for (double size : {0.8, 1.5, 2.0, 2.4}) {
    const double dataset_mb = size * scale;
    for (const PolicySpec& policy : std::vector<PolicySpec>{
             {"Full", PolicyKind::kFull, true},
             {"TestMixed", PolicyKind::kTestMixed, true}}) {
      size_t natural_levels = 0, forced_levels = 0;
      const double natural =
          Measure(policy, 0, dataset_mb, window_mb, &natural_levels);
      // Force a 4th on-SSD level from the start.
      const double forced =
          Measure(policy, 4, dataset_mb, window_mb, &forced_levels);
      table.AddRowValues(dataset_mb, policy.name, natural_levels, natural,
                         forced, 100.0 * (1.0 - forced / natural));
    }
    std::cerr << "  [abl-growth] " << dataset_mb << " MB done\n";
  }
  table.Print(std::cout, "abl_level_growth");
  std::cout << "\nshape check: the pre-created deep level helps policies "
               "that can empty into it (Full/TestMixed) most where the "
               "natural bottom level is nearly full.\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
