// Figure 8: effect of workload skew — steady-state write cost for a fixed
// dataset size under Normal(sigma, omega=10k) as 2*sigma sweeps from
// 0.005% to 20% of the key domain.
//
// Paper shape to reproduce (reading right to left, i.e. increasing skew):
// ChooseBest(-P) pulls further ahead of RR(-P) as sigma shrinks (dense
// ranges are easier to find); block-preserving variants beat their "-P"
// twins more as sigma shrinks (key concentration raises preservation
// chances); Mixed keeps a comfortable lead across the whole range.

#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

void Main() {
  const double scale = ScaleFromEnv();
  const Options options = BenchOptions();
  PrintHeader("Figure 8",
              "steady-state write cost vs skew (Normal, 2*sigma from "
              "0.005% to 20% of the key domain)",
              options);

  const double dataset_mb = 2.0 * scale;
  const double window_mb = 2.0 * scale;
  // 2*sigma as a percentage of the key domain (the paper's x axis).
  const std::vector<double> two_sigma_pct = {0.005, 0.05, 1.0, 5.0, 20.0};

  std::vector<std::string> columns = {"two_sigma_pct"};
  for (const auto& p : SevenPolicies()) columns.push_back(p.name);
  TablePrinter table(columns);

  for (double pct : two_sigma_pct) {
    std::vector<std::string> row = {internal_table::FormatCell(pct)};
    for (const auto& policy : SevenPolicies()) {
      WorkloadSpec spec;
      spec.kind = WorkloadKind::kNormal;
      spec.sigma_fraction = pct / 100.0 / 2.0;
      spec.omega = 10'000;
      Experiment exp(options, policy, spec);
      Status st = exp.PrepareSteadyState(dataset_mb);
      LSMSSD_CHECK(st.ok()) << st.ToString();
      auto metrics = exp.Measure(window_mb);
      LSMSSD_CHECK(metrics.ok());
      row.push_back(internal_table::FormatCell(metrics->BlocksPerMb()));
    }
    table.AddRow(row);
    std::cerr << "  [fig08] 2sigma=" << pct << "% done\n";
  }
  table.Print(std::cout, "fig08");
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
