// Extension experiment: chaos soak of the serving path.
//
// The YCSB server bench measures the request path when everything works;
// this one measures whether the *robustness* machinery keeps its
// promises when nothing does. Three phases, each with a hard oracle:
//
//  1. Overload burst — a small worker pool with a tiny pending-frame cap
//     is blasted by pipelined raw connections. Every frame must be
//     answered (OK or kOverloaded with a retry-after hint), the server
//     must shed rather than queue, and a well-behaved retrying client
//     running through the same storm must finish with zero errors.
//
//  2. Fault soak — YCSB-A-shaped load where every client socket runs
//     through a SocketFaultInjector (periodic resets, mid-frame
//     truncations, EINTR/EAGAIN, short I/O), the shared FaultInjector
//     clock is armed into coordinated reset storms, and the server is
//     abruptly killed and restarted mid-soak (--kills times, same dir,
//     same port — recovery from WAL + checkpoint). Clients ride through
//     on retry/reconnect with per-request sequence tokens; the WAL runs
//     in sync-always mode so an acked write is durable by definition.
//
//  3. Verification — a clean, fault-free client reads every record back.
//     Each thread owns the key indices congruent to its id, writes
//     self-describing stamped values ("C<index>:<version>;…"), and
//     tracks the last acked and last issued version per index. The store
//     must hold, for every index, a version v with acked <= v <= issued
//     (v < acked is a lost acked write; v > issued is fabrication), and
//     the stamp's index must match the key. Zero tolerance.
//
// The epilogue drains the server gracefully and requires the usual
// integrity report: zero scrub corruptions, zero quarantined blocks,
// zero leaked device blocks — chaos is not an excuse for a dirty store.
//
// Results land on stdout and in BENCH_server_chaos.json.
//
//   --records=N  --threads=T  --soak-seconds=S  --kills=K
//   --burst-conns=N  --burst-frames=N  --json=PATH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/embedded_server.h"
#include "src/net/client.h"
#include "src/net/fault_socket.h"
#include "src/storage/fault_injection.h"
#include "src/util/flags.h"
#include "src/util/logging.h"

namespace lsmssd::bench {
namespace {

using net::Client;
using net::ClientOptions;
using net::Frame;
using net::Opcode;
using net::SocketFaultConfig;
using net::SocketFaultInjector;

double Scale() {
  const char* scale = std::getenv("LSMSSD_SCALE");
  if (scale == nullptr) return 1.0;
  const double v = std::atof(scale);
  return v > 0 ? v : 1.0;
}

Key KeyForIndex(uint64_t index) { return static_cast<Key>(index + 1); }

/// Self-describing value: "C<index>:<version>;" padded to the store's
/// fixed payload width. The stamp is the oracle — any byte the store
/// loses or misdirects shows up as a parse failure or an index mismatch.
std::string Stamp(uint64_t index, uint64_t version, size_t payload_size) {
  std::string v = "C" + std::to_string(index) + ":" +
                  std::to_string(version) + ";";
  LSMSSD_CHECK(v.size() <= payload_size)
      << "payload width " << payload_size << " too small for stamps";
  v.resize(payload_size, 'x');
  return v;
}

bool ParseStamp(std::string_view value, uint64_t* index, uint64_t* version) {
  if (value.empty() || value[0] != 'C') return false;
  size_t pos = 1;
  auto digits = [&](uint64_t* out) {
    bool any = false;
    *out = 0;
    while (pos < value.size() && value[pos] >= '0' && value[pos] <= '9') {
      *out = *out * 10 + static_cast<uint64_t>(value[pos] - '0');
      ++pos;
      any = true;
    }
    return any;
  };
  if (!digits(index)) return false;
  if (pos >= value.size() || value[pos] != ':') return false;
  ++pos;
  if (!digits(version)) return false;
  return pos < value.size() && value[pos] == ';';
}

uint64_t ElapsedMs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

// ---------------------------------------------------------------------------
// Phase 1: overload burst.
// ---------------------------------------------------------------------------

struct OverloadResult {
  uint64_t frames_sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;           ///< kOverloaded replies.
  uint64_t backpressure = 0;   ///< ResourceExhausted (engine stall).
  uint64_t other_errors = 0;
  uint64_t hint_parsed = 0;    ///< Shed replies with a retry_after_ms hint.
  uint32_t hint_ms = 0;        ///< Last parsed hint value.
  uint64_t retry_client_ops = 0;
  uint64_t retry_client_errors = 0;
  uint64_t retry_client_overloaded = 0;  ///< Rejections it retried through.
  uint64_t server_shed_counter = 0;
  double seconds = 0;
};

OverloadResult RunOverloadPhase(size_t burst_conns, uint64_t burst_frames) {
  EmbeddedServerOptions eopts;
  eopts.dir = (std::filesystem::temp_directory_path() /
               "lsmssd_server_chaos_overload")
                  .string();
  eopts.server_workers = 1;        // One slow executor...
  eopts.wal_sync_always = true;    // ...made slower: every put fsyncs.
  eopts.max_pending_frames = 16;   // ...behind a tiny pending-work cap.
  eopts.overload_retry_after_ms = 5;
  auto embedded_or = EmbeddedServer::Start(eopts);
  LSMSSD_CHECK(embedded_or.ok())
      << "overload server: " << embedded_or.status().ToString();
  auto embedded = std::move(embedded_or).value();
  const uint16_t port = embedded->port();

  size_t payload_size = 0;
  {
    ClientOptions copts;
    copts.port = port;
    auto probe_or = Client::Connect(copts);
    LSMSSD_CHECK(probe_or.ok()) << probe_or.status().ToString();
    auto stats_or = (*probe_or)->Stats();
    LSMSSD_CHECK(stats_or.ok()) << stats_or.status().ToString();
    payload_size = stats_or->payload_size;
  }
  const std::string value(payload_size, 'b');

  OverloadResult r;
  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<uint64_t> ok{0}, shed{0}, backpressure{0}, other{0};
  std::atomic<uint64_t> hints{0};
  std::atomic<uint32_t> hint_ms{0};

  // Raw pipelined blasters: send the whole burst, then read every reply.
  // The oracle is conservation — exactly one response per request frame,
  // in order, even for the frames the server refused to execute.
  std::vector<std::thread> blasters;
  for (size_t c = 0; c < burst_conns; ++c) {
    blasters.emplace_back([&, c] {
      ClientOptions copts;
      copts.port = port;
      auto client_or = Client::Connect(copts);
      LSMSSD_CHECK(client_or.ok()) << client_or.status().ToString();
      auto client = std::move(client_or).value();
      for (uint64_t i = 0; i < burst_frames; ++i) {
        const Key key = KeyForIndex(c * burst_frames + i);
        Status st = client->SendRaw(static_cast<uint8_t>(Opcode::kPut),
                                    net::EncodePutRequest(key, value));
        LSMSSD_CHECK(st.ok()) << "burst send: " << st.ToString();
      }
      for (uint64_t i = 0; i < burst_frames; ++i) {
        Frame frame;
        Status st = client->ReceiveResponse(&frame);
        LSMSSD_CHECK(st.ok()) << "burst recv: " << st.ToString();
        std::string_view body;
        Status decoded = net::DecodeResponseStatus(frame.payload, &body);
        if (decoded.ok()) {
          ok.fetch_add(1);
        } else if (decoded.IsUnavailable()) {
          shed.fetch_add(1);
          uint32_t ms = 0;
          if (net::ParseRetryAfterMs(decoded.message(), &ms)) {
            hints.fetch_add(1);
            hint_ms.store(ms);
          }
        } else if (decoded.IsResourceExhausted()) {
          backpressure.fetch_add(1);
        } else {
          other.fetch_add(1);
          std::cerr << "  [chaos] unexpected burst reply: "
                    << decoded.ToString() << "\n";
        }
      }
    });
  }

  // A polite client lives through the same storm: bounded retries with
  // the server's retry-after hint as the backoff floor. It must finish
  // with zero errors — overload is survivable, not fatal.
  std::thread polite([&] {
    ClientOptions copts;
    copts.port = port;
    copts.retry.max_attempts = 64;
    copts.retry.initial_backoff_ms = 2;
    copts.retry.max_backoff_ms = 50;
    auto client_or = Client::Connect(copts);
    LSMSSD_CHECK(client_or.ok()) << client_or.status().ToString();
    auto client = std::move(client_or).value();
    const uint64_t polite_base = burst_conns * burst_frames + 1000;
    for (uint64_t i = 0; i < 20; ++i) {
      ++r.retry_client_ops;
      if (!client->Put(KeyForIndex(polite_base + i), value).ok()) {
        ++r.retry_client_errors;
      }
    }
    r.retry_client_overloaded = client->stats().overloaded_replies;
  });

  for (auto& t : blasters) t.join();
  polite.join();

  r.frames_sent = burst_conns * burst_frames;
  r.ok = ok.load();
  r.shed = shed.load();
  r.backpressure = backpressure.load();
  r.other_errors = other.load();
  r.hint_parsed = hints.load();
  r.hint_ms = hint_ms.load();
  r.seconds = static_cast<double>(ElapsedMs(t0)) / 1000.0;

  // The server's own shed counter travels in the STATS response; it must
  // agree with what the clients saw (the polite client's retried
  // rejections count too).
  {
    ClientOptions copts;
    copts.port = port;
    auto probe_or = Client::Connect(copts);
    LSMSSD_CHECK(probe_or.ok()) << probe_or.status().ToString();
    auto stats_or = (*probe_or)->Stats();
    LSMSSD_CHECK(stats_or.ok()) << stats_or.status().ToString();
    r.server_shed_counter = stats_or->frames_shed_overload;
  }
  auto report_or = embedded->Stop();
  LSMSSD_CHECK(report_or.ok()) << report_or.status().ToString();
  return r;
}

// ---------------------------------------------------------------------------
// Phase 2: fault soak with kill/restart.
// ---------------------------------------------------------------------------

struct SoakThreadAccum {
  uint64_t ops = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allowed_errors = 0;   ///< Unavailable/TimedOut/ResourceExhausted.
  uint64_t hard_errors = 0;      ///< Anything else (except violations).
  uint64_t violations = 0;       ///< Lost/garbled data observed online.
  uint64_t max_op_ms = 0;
  net::ClientStats client;
  SocketFaultInjector::Counters injected;
};

struct SoakResult {
  SoakThreadAccum total;
  uint64_t kills = 0;
  uint64_t restarts = 0;
  uint64_t max_restart_ms = 0;
  uint64_t storms = 0;
  double seconds = 0;
};

SoakResult RunSoakPhase(uint64_t records, size_t threads, double soak_seconds,
                        uint64_t kills, size_t payload_size,
                        const std::string& host, uint16_t port,
                        std::unique_ptr<EmbeddedServer>* server,
                        const EmbeddedServerOptions& base_opts,
                        std::vector<uint64_t>* issued,
                        std::vector<uint64_t>* acked) {
  FaultInjector storm_clock;
  std::vector<SoakThreadAccum> accums(threads);
  std::vector<std::thread> runners;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(soak_seconds));

  for (size_t t = 0; t < threads; ++t) {
    runners.emplace_back([&, t] {
      SoakThreadAccum& acc = accums[t];
      SocketFaultConfig fcfg;
      fcfg.eintr_every = 17 + t;
      fcfg.eagain_every = 29 + t;
      fcfg.short_every = 41 + t;
      fcfg.short_bytes = 5;
      fcfg.truncate_every = 101 + 5 * t;
      fcfg.reset_every = 139 + 5 * t;
      SocketFaultInjector injector(&storm_clock, fcfg);

      ClientOptions copts;
      copts.host = host;
      copts.port = port;
      copts.connect_timeout_ms = 2000;
      copts.io_timeout_ms = 4000;
      copts.fault_injector = &injector;
      copts.retry.max_attempts = 10;
      copts.retry.initial_backoff_ms = 2;
      copts.retry.max_backoff_ms = 100;
      copts.retry.retry_writes = true;  // Stamped blind puts: idempotent.
      copts.retry.seed = 777 + t;
      auto client_or = Client::Connect(copts);
      LSMSSD_CHECK(client_or.ok()) << client_or.status().ToString();
      auto client = std::move(client_or).value();

      std::mt19937_64 rng(4242 + t);
      const uint64_t own_count = records / threads + (t < records % threads);
      for (uint64_t i = 0;; ++i) {
        if ((i & 15) == 0 && std::chrono::steady_clock::now() >= deadline) {
          break;
        }
        const auto op0 = std::chrono::steady_clock::now();
        Status st;
        if (rng() % 100 < 50 || own_count == 0) {
          // Read any index; the stamp must parse and name that index.
          const uint64_t idx = rng() % records;
          auto got = client->Get(KeyForIndex(idx));
          ++acc.reads;
          st = got.ok() ? Status::OK() : got.status();
          if (got.ok()) {
            uint64_t pidx = 0, pver = 0;
            if (got->size() != payload_size ||
                !ParseStamp(*got, &pidx, &pver) || pidx != idx) {
              ++acc.violations;
              std::cerr << "  [chaos] VIOLATION: bad stamp for index " << idx
                        << "\n";
            }
          } else if (got.status().IsNotFound()) {
            // Every index was ack-loaded before the soak and nothing
            // deletes: a miss is a lost acked write, observed live.
            ++acc.violations;
            std::cerr << "  [chaos] VIOLATION: lost index " << idx << "\n";
            st = Status::OK();  // Already accounted; not a transport error.
          }
        } else {
          // Write the next version of one of this thread's own indices.
          const uint64_t idx = t + threads * (rng() % own_count);
          const uint64_t version = ++(*issued)[idx];
          st = client->Put(KeyForIndex(idx),
                           Stamp(idx, version, payload_size));
          ++acc.writes;
          if (st.ok()) (*acked)[idx] = version;
        }
        ++acc.ops;
        acc.max_op_ms = std::max(acc.max_op_ms, ElapsedMs(op0));
        if (!st.ok()) {
          if (st.IsUnavailable() || st.IsTimedOut() ||
              st.IsResourceExhausted()) {
            ++acc.allowed_errors;
            // The server may be mid-restart; don't spin on refused dials.
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          } else {
            ++acc.hard_errors;
            std::cerr << "  [chaos] hard error: " << st.ToString() << "\n";
          }
        }
      }
      acc.client = client->stats();
      acc.injected = injector.counters();
    });
  }

  // Control thread: alternate reset storms (arm the shared clock — every
  // client's next I/O fails until disarm) with server kill/restart
  // cycles, evenly spaced across the soak window.
  SoakResult r;
  {
    struct Event {
      double frac;
      bool kill;
    };
    std::vector<Event> events;
    for (uint64_t k = 0; k <= kills; ++k) {
      events.push_back({(2.0 * k + 1.0) / (2.0 * (kills + 1)), false});
      if (k < kills) {
        events.push_back({static_cast<double>(k + 1) / (kills + 1), true});
      }
    }
    for (const Event& ev : events) {
      const auto when =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(soak_seconds * ev.frac));
      std::this_thread::sleep_until(when);
      if (std::chrono::steady_clock::now() >= deadline) break;
      if (ev.kill) {
        std::cerr << "  [chaos] kill #" << (r.kills + 1) << " at t+"
                  << ElapsedMs(start) << "ms\n";
        Status st = (*server)->Kill();
        LSMSSD_CHECK(st.ok()) << st.ToString();
        ++r.kills;
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        const auto r0 = std::chrono::steady_clock::now();
        EmbeddedServerOptions ropts = base_opts;
        ropts.wipe_dir = false;  // Recover from WAL + checkpoint.
        ropts.port = port;       // Clients re-dial the address they hold.
        auto restarted_or = EmbeddedServer::Start(ropts);
        LSMSSD_CHECK(restarted_or.ok())
            << "restart: " << restarted_or.status().ToString();
        *server = std::move(restarted_or).value();
        ++r.restarts;
        r.max_restart_ms = std::max(r.max_restart_ms, ElapsedMs(r0));
        std::cerr << "  [chaos] restarted in " << ElapsedMs(r0) << "ms\n";
      } else {
        storm_clock.Arm(0);  // Every step fails: a full partition.
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
        storm_clock.Disarm();
        ++r.storms;
      }
    }
  }

  for (auto& t : runners) t.join();
  r.seconds = static_cast<double>(ElapsedMs(start)) / 1000.0;
  for (const SoakThreadAccum& acc : accums) {
    r.total.ops += acc.ops;
    r.total.reads += acc.reads;
    r.total.writes += acc.writes;
    r.total.allowed_errors += acc.allowed_errors;
    r.total.hard_errors += acc.hard_errors;
    r.total.violations += acc.violations;
    r.total.max_op_ms = std::max(r.total.max_op_ms, acc.max_op_ms);
    r.total.client.retries += acc.client.retries;
    r.total.client.reconnects += acc.client.reconnects;
    r.total.client.overloaded_replies += acc.client.overloaded_replies;
    r.total.client.send_timeouts += acc.client.send_timeouts;
    r.total.client.recv_timeouts += acc.client.recv_timeouts;
    r.total.client.abandoned_replies += acc.client.abandoned_replies;
    r.total.injected.delays += acc.injected.delays;
    r.total.injected.eintr += acc.injected.eintr;
    r.total.injected.eagain += acc.injected.eagain;
    r.total.injected.short_ios += acc.injected.short_ios;
    r.total.injected.truncations += acc.injected.truncations;
    r.total.injected.resets += acc.injected.resets;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Main.
// ---------------------------------------------------------------------------

int Main(int argc, char** argv) {
  auto flags_or = ParseFlagArgs(argc, argv, 1);
  LSMSSD_CHECK(flags_or.ok()) << flags_or.status().ToString();
  const FlagMap& flags = *flags_or;
  if (Status st = CheckKnownFlags(
          flags, {"records", "threads", "soak-seconds", "kills",
                  "burst-conns", "burst-frames", "json"});
      !st.ok()) {
    std::cerr << st.message() << "\n";
    return 2;
  }

  const double scale = Scale();
  const uint64_t records =
      FlagUint(flags, "records",
               std::max<uint64_t>(512, static_cast<uint64_t>(4000 * scale)))
          .value();
  const size_t threads =
      static_cast<size_t>(FlagUint(flags, "threads", 4).value());
  const double soak_seconds =
      FlagDouble(flags, "soak-seconds", std::max(2.0, 5.0 * scale)).value();
  const uint64_t kills = FlagUint(flags, "kills", 2).value();
  const size_t burst_conns =
      static_cast<size_t>(FlagUint(flags, "burst-conns", 6).value());
  const uint64_t burst_frames = FlagUint(flags, "burst-frames", 256).value();
  const std::string json_path =
      FlagOr(flags, "json", "BENCH_server_chaos.json");
  LSMSSD_CHECK(threads > 0) << "--threads must be >= 1";

  std::cout << "== Extension: chaos-hardened serving ==\n"
            << "   " << records << " records, " << threads
            << " faulty clients, soak " << soak_seconds << "s, " << kills
            << " kill/restart cycles (LSMSSD_SCALE=" << scale << ")\n\n";

  // ---- Phase 1: overload burst -----------------------------------------
  std::cerr << "  [chaos] phase 1: overload burst (" << burst_conns << " x "
            << burst_frames << " pipelined puts, 1 worker, cap 16)\n";
  OverloadResult overload = RunOverloadPhase(burst_conns, burst_frames);
  const uint64_t answered =
      overload.ok + overload.shed + overload.backpressure +
      overload.other_errors;
  std::cout << "overload: sent=" << overload.frames_sent << " answered="
            << answered << " ok=" << overload.ok << " shed=" << overload.shed
            << " (server counter " << overload.server_shed_counter
            << ", hints=" << overload.hint_parsed << ", retry_after="
            << overload.hint_ms << "ms) polite_client_errors="
            << overload.retry_client_errors << "/"
            << overload.retry_client_ops << " (rode through "
            << overload.retry_client_overloaded << " rejections)\n";
  // Conservation: every blasted frame answered; the server's shed counter
  // equals the rejections all clients saw (blasters + polite retries).
  bool overload_ok = answered == overload.frames_sent && overload.shed > 0 &&
                     overload.server_shed_counter ==
                         overload.shed + overload.retry_client_overloaded &&
                     overload.hint_parsed > 0 && overload.other_errors == 0 &&
                     overload.retry_client_errors == 0;
  if (!overload_ok) std::cerr << "  [chaos] OVERLOAD PHASE FAILED\n";

  // ---- Phase 2: fault soak ---------------------------------------------
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lsmssd_server_chaos_soak")
          .string();
  EmbeddedServerOptions eopts;
  eopts.dir = dir;
  eopts.server_workers = 4;
  eopts.wal_sync_always = true;   // Acked == durable: the oracle's premise.
  eopts.background_compaction = true;
  eopts.checkpoint_wal_mb = 1;
  eopts.scrub_interval_ms = 25;
  auto embedded_or = EmbeddedServer::Start(eopts);
  LSMSSD_CHECK(embedded_or.ok())
      << "soak server: " << embedded_or.status().ToString();
  auto embedded = std::move(embedded_or).value();
  const uint16_t port = embedded->port();
  const std::string host = "127.0.0.1";

  size_t payload_size = 0;
  {
    ClientOptions copts;
    copts.port = port;
    auto probe_or = Client::Connect(copts);
    LSMSSD_CHECK(probe_or.ok()) << probe_or.status().ToString();
    auto stats_or = (*probe_or)->Stats();
    LSMSSD_CHECK(stats_or.ok()) << stats_or.status().ToString();
    payload_size = stats_or->payload_size;
  }

  // Ack-load every index at version 0 through clean clients; the soak
  // oracle (and its online read checks) build on "everything was acked
  // at least once".
  std::vector<uint64_t> issued(records, 0), acked(records, 0);
  {
    std::atomic<uint64_t> failures{0};
    std::vector<std::thread> loaders;
    for (size_t t = 0; t < threads; ++t) {
      loaders.emplace_back([&, t] {
        ClientOptions copts;
        copts.port = port;
        copts.retry.max_attempts = 5;
        auto client_or = Client::Connect(copts);
        LSMSSD_CHECK(client_or.ok()) << client_or.status().ToString();
        auto client = std::move(client_or).value();
        const uint64_t lo = records * t / threads;
        const uint64_t hi = records * (t + 1) / threads;
        for (uint64_t i = lo; i < hi; ++i) {
          if (!client->Put(KeyForIndex(i), Stamp(i, 0, payload_size)).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : loaders) t.join();
    LSMSSD_CHECK(failures.load() == 0)
        << failures.load() << " load puts failed";
  }
  std::cerr << "  [chaos] phase 2: fault soak (" << records
            << " records loaded)\n";

  SoakResult soak =
      RunSoakPhase(records, threads, soak_seconds, kills, payload_size, host,
                   port, &embedded, eopts, &issued, &acked);
  std::cout << "soak: ops=" << soak.total.ops << " (" << soak.total.reads
            << "r/" << soak.total.writes << "w) over " << soak.seconds
            << "s, kills=" << soak.kills << " restarts=" << soak.restarts
            << " (max " << soak.max_restart_ms << "ms) storms=" << soak.storms
            << "\n      client: retries=" << soak.total.client.retries
            << " reconnects=" << soak.total.client.reconnects
            << " abandoned=" << soak.total.client.abandoned_replies
            << " recv_timeouts=" << soak.total.client.recv_timeouts
            << "\n      injected: resets=" << soak.total.injected.resets
            << " truncations=" << soak.total.injected.truncations
            << " eintr=" << soak.total.injected.eintr
            << " eagain=" << soak.total.injected.eagain
            << " short=" << soak.total.injected.short_ios
            << "\n      errors: allowed=" << soak.total.allowed_errors
            << " hard=" << soak.total.hard_errors
            << " violations=" << soak.total.violations
            << " max_op_ms=" << soak.total.max_op_ms << "\n";

  // ---- Phase 3: verify every acked write survived ----------------------
  uint64_t lost_acked = 0, stamp_mismatches = 0;
  {
    ClientOptions copts;
    copts.port = port;
    copts.retry.max_attempts = 5;
    auto client_or = Client::Connect(copts);
    LSMSSD_CHECK(client_or.ok()) << client_or.status().ToString();
    auto client = std::move(client_or).value();
    for (uint64_t i = 0; i < records; ++i) {
      auto got = client->Get(KeyForIndex(i));
      if (!got.ok()) {
        ++lost_acked;
        std::cerr << "  [chaos] LOST: index " << i << " acked v" << acked[i]
                  << ": " << got.status().ToString() << "\n";
        continue;
      }
      uint64_t pidx = 0, pver = 0;
      if (got->size() != payload_size || !ParseStamp(*got, &pidx, &pver) ||
          pidx != i) {
        ++stamp_mismatches;
        std::cerr << "  [chaos] GARBLED: index " << i << "\n";
        continue;
      }
      if (pver < acked[i] || pver > issued[i]) {
        ++lost_acked;
        std::cerr << "  [chaos] LOST: index " << i << " holds v" << pver
                  << ", acked v" << acked[i] << ", issued v" << issued[i]
                  << "\n";
      }
    }
  }
  std::cout << "verify: " << records << " keys, lost_acked=" << lost_acked
            << " garbled=" << stamp_mismatches << "\n";

  // ---- Epilogue: graceful drain + integrity ----------------------------
  auto report_or = embedded->Stop();
  LSMSSD_CHECK(report_or.ok()) << report_or.status().ToString();
  const EmbeddedServer::Report& rep = *report_or;
  const bool store_clean = rep.scrub_corruptions == 0 &&
                           rep.quarantined_blocks == 0 && rep.leak_check_ok;
  std::cout << "integrity: scrub_corruptions=" << rep.scrub_corruptions
            << " quarantined=" << rep.quarantined_blocks
            << " leak_check=" << (rep.leak_check_ok ? "ok" : "LEAK")
            << " checkpoints=" << rep.checkpoints << "\n";

  const bool faults_exercised =
      soak.total.injected.resets > 0 && soak.total.client.reconnects > 0 &&
      soak.restarts == soak.kills;
  if (!faults_exercised) {
    std::cerr << "  [chaos] warning: fault machinery barely exercised "
                 "(scale too small?)\n";
  }
  const bool soak_ok = soak.total.hard_errors == 0 &&
                       soak.total.violations == 0 && lost_acked == 0 &&
                       stamp_mismatches == 0 && faults_exercised;

  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n  \"bench\": \"server_chaos\",\n  \"scale\": %g,\n"
      "  \"records\": %llu,\n  \"threads\": %zu,\n"
      "  \"overload\": {\"frames_sent\": %llu, \"answered\": %llu, "
      "\"ok\": %llu, \"shed\": %llu, \"backpressure\": %llu, "
      "\"hint_parsed\": %llu, \"retry_after_ms\": %u, "
      "\"polite_client_ops\": %llu, \"polite_client_errors\": %llu, "
      "\"polite_client_overloaded\": %llu, \"seconds\": %.3f},\n"
      "  \"soak\": {\"ops\": %llu, \"reads\": %llu, \"writes\": %llu, "
      "\"seconds\": %.3f, \"kills\": %llu, \"restarts\": %llu, "
      "\"max_restart_ms\": %llu, \"storms\": %llu, "
      "\"allowed_errors\": %llu, \"hard_errors\": %llu, "
      "\"violations\": %llu, \"max_op_ms\": %llu,\n"
      "    \"client\": {\"retries\": %llu, \"reconnects\": %llu, "
      "\"overloaded_replies\": %llu, \"abandoned_replies\": %llu, "
      "\"send_timeouts\": %llu, \"recv_timeouts\": %llu},\n"
      "    \"injected\": {\"resets\": %llu, \"truncations\": %llu, "
      "\"eintr\": %llu, \"eagain\": %llu, \"short_ios\": %llu}},\n"
      "  \"verify\": {\"keys\": %llu, \"lost_acked\": %llu, "
      "\"garbled\": %llu},\n"
      "  \"integrity\": {\"scrub_corruptions\": %llu, "
      "\"quarantined_blocks\": %llu, \"leak_check_ok\": %s, "
      "\"checkpoints\": %llu},\n"
      "  \"passed\": %s\n}\n",
      scale, static_cast<unsigned long long>(records), threads,
      static_cast<unsigned long long>(overload.frames_sent),
      static_cast<unsigned long long>(answered),
      static_cast<unsigned long long>(overload.ok),
      static_cast<unsigned long long>(overload.shed),
      static_cast<unsigned long long>(overload.backpressure),
      static_cast<unsigned long long>(overload.hint_parsed), overload.hint_ms,
      static_cast<unsigned long long>(overload.retry_client_ops),
      static_cast<unsigned long long>(overload.retry_client_errors),
      static_cast<unsigned long long>(overload.retry_client_overloaded),
      overload.seconds, static_cast<unsigned long long>(soak.total.ops),
      static_cast<unsigned long long>(soak.total.reads),
      static_cast<unsigned long long>(soak.total.writes), soak.seconds,
      static_cast<unsigned long long>(soak.kills),
      static_cast<unsigned long long>(soak.restarts),
      static_cast<unsigned long long>(soak.max_restart_ms),
      static_cast<unsigned long long>(soak.storms),
      static_cast<unsigned long long>(soak.total.allowed_errors),
      static_cast<unsigned long long>(soak.total.hard_errors),
      static_cast<unsigned long long>(soak.total.violations),
      static_cast<unsigned long long>(soak.total.max_op_ms),
      static_cast<unsigned long long>(soak.total.client.retries),
      static_cast<unsigned long long>(soak.total.client.reconnects),
      static_cast<unsigned long long>(soak.total.client.overloaded_replies),
      static_cast<unsigned long long>(soak.total.client.abandoned_replies),
      static_cast<unsigned long long>(soak.total.client.send_timeouts),
      static_cast<unsigned long long>(soak.total.client.recv_timeouts),
      static_cast<unsigned long long>(soak.total.injected.resets),
      static_cast<unsigned long long>(soak.total.injected.truncations),
      static_cast<unsigned long long>(soak.total.injected.eintr),
      static_cast<unsigned long long>(soak.total.injected.eagain),
      static_cast<unsigned long long>(soak.total.injected.short_ios),
      static_cast<unsigned long long>(records),
      static_cast<unsigned long long>(lost_acked),
      static_cast<unsigned long long>(stamp_mismatches),
      static_cast<unsigned long long>(rep.scrub_corruptions),
      static_cast<unsigned long long>(rep.quarantined_blocks),
      rep.leak_check_ok ? "true" : "false",
      static_cast<unsigned long long>(rep.checkpoints),
      overload_ok && soak_ok && store_clean ? "true" : "false");
  std::ofstream out(json_path);
  out << buf;
  out.close();
  std::cerr << "  [chaos] wrote " << json_path << "\n";

  if (!overload_ok || !soak_ok || !store_clean) {
    std::cerr << "FAILED: overload_ok=" << overload_ok
              << " soak_ok=" << soak_ok << " store_clean=" << store_clean
              << "\n";
    return 1;
  }
  std::cout << "\nchaos soak PASSED: zero lost acked writes, zero hangs, "
               "store clean\n";
  return 0;
}

}  // namespace
}  // namespace lsmssd::bench

int main(int argc, char** argv) {
  return lsmssd::bench::Main(argc, argv);
}
