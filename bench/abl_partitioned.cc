// Ablation: dynamic vs pre-partitioned range selection (Section VI). The
// paper argues ChooseBest-P is a lower bound on HyperLevelDB's cost
// because HyperLevelDB picks the best range only among fixed SSTable
// partitions. We compare ChooseBest against the PartitionedCB baseline
// (and RR as a floor) under increasing skew, where dynamic selection's
// freedom to find dense ranges matters most.

#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

void Main() {
  const double scale = ScaleFromEnv();
  PrintHeader("Ablation: partitioned selection",
              "ChooseBest vs HyperLevelDB-like PartitionedCB vs RR across "
              "skew (Normal, 50/50)",
              BenchOptions());

  const double dataset_mb = 1.5 * scale;
  const double window_mb = 3.0 * scale;
  const std::vector<double> two_sigma_pct = {0.05, 1.0, 20.0};

  const std::vector<PolicySpec> policies = {
      {"RR", PolicyKind::kRr, true},
      {"PartitionedCB", PolicyKind::kPartitioned, true},
      {"ChooseBest", PolicyKind::kChooseBest, true},
  };

  TablePrinter table(
      {"two_sigma_pct", "RR", "PartitionedCB", "ChooseBest"});
  for (double pct : two_sigma_pct) {
    std::vector<std::string> row = {internal_table::FormatCell(pct)};
    for (const auto& policy : policies) {
      const Options options = BenchOptions();
      WorkloadSpec spec;
      spec.kind = WorkloadKind::kNormal;
      spec.sigma_fraction = pct / 100.0 / 2.0;
      Experiment exp(options, policy, spec);
      Status st = exp.PrepareSteadyState(dataset_mb);
      LSMSSD_CHECK(st.ok()) << st.ToString();
      auto metrics = exp.Measure(window_mb);
      LSMSSD_CHECK(metrics.ok());
      row.push_back(internal_table::FormatCell(metrics->BlocksPerMb()));
    }
    table.AddRow(row);
    std::cerr << "  [abl-partitioned] 2sigma=" << pct << "% done\n";
  }
  table.Print(std::cout, "abl_partitioned");
  std::cout << "\nshape check: ChooseBest <= PartitionedCB at every skew "
               "(restricted candidates can only do worse).\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
