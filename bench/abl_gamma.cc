// Ablation: the tree order Gamma. Corollary 1 predicts Full's amortized
// cost per block merged into a level at about (Gamma + 1)/2; Theorem 2
// caps ChooseBest's per-merge cost at Gamma + 1 per merged block. This
// sweep measures both against their predictions.

#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

double AmortizedPerMergedBlock(const Experiment& exp, const LsmStats& delta,
                               size_t level) {
  const double merged_blocks =
      static_cast<double>(delta.records_merged_into[level]) /
      exp.options().records_per_block();
  if (merged_blocks <= 0) return 0;
  return static_cast<double>(delta.BlocksWrittenForLevel(level)) /
         merged_blocks;
}

void Main() {
  const double scale = ScaleFromEnv();
  PrintHeader("Ablation: Gamma",
              "tree order sweep — Full vs ChooseBest amortized cost per "
              "block merged into L1 (insert-only Uniform; Corollary 1 "
              "predicts (Gamma+1)/2 for Full, Theorem 2 caps ChooseBest at "
              "Gamma+1)",
              BenchOptions());

  const double dataset_mb = 1.5 * scale;
  const double window_mb = 3.0 * scale;

  TablePrinter table({"gamma", "full_L1_cost", "full_prediction",
                      "choosebest_L1_cost", "choosebest_bound"});
  for (double gamma : {4.0, 6.0, 8.0, 10.0}) {
    Options options = BenchOptions();
    options.gamma = gamma;
    options.preserve_blocks = false;  // The analysis ignores preservation.

    double costs[2] = {0, 0};
    const PolicySpec specs[2] = {
        {"Full", PolicyKind::kFull, false},
        {"ChooseBest", PolicyKind::kChooseBest, false},
    };
    for (int i = 0; i < 2; ++i) {
      WorkloadSpec spec;
      spec.kind = WorkloadKind::kUniform;
      Experiment exp(options, specs[i], spec);
      Status st = exp.PrepareSteadyState(dataset_mb);
      LSMSSD_CHECK(st.ok()) << st.ToString();
      auto metrics = exp.Measure(window_mb);
      LSMSSD_CHECK(metrics.ok());
      costs[i] = AmortizedPerMergedBlock(exp, metrics->stats_delta, 1);
    }
    table.AddRowValues(gamma, costs[0], (gamma + 1.0) / 2.0, costs[1],
                       gamma + 1.0);
    std::cerr << "  [abl-gamma] " << gamma << " done\n";
  }
  table.Print(std::cout, "abl_gamma");
  std::cout << "\ncheck: full_L1_cost tracks (Gamma+1)/2 within a small "
               "factor; choosebest_L1_cost stays below Gamma+1.\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
