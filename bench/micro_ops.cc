// Microbenchmarks (google-benchmark) of the hot primitives underneath the
// merge engine: block encode/decode, memtable ops, leaf-directory lookup,
// the ChooseBest metadata scan, and the LRU cache. These quantify the CPU
// overhead that Section V reports as 2%-16% of total request time.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/format/record_block.h"
#include "src/format/record_block_view.h"
#include "src/lsm/level.h"
#include "src/lsm/lsm_tree.h"
#include "src/lsm/memtable.h"
#include "src/policy/choose_best_policy.h"
#include "src/policy/policy_factory.h"
#include "src/storage/lru_cache.h"
#include "src/storage/mem_block_device.h"
#include "src/util/golden_section.h"
#include "src/util/random.h"

namespace lsmssd {
namespace {

Options MicroOptions() {
  Options options;
  options.block_size = 4096;
  options.key_size = 4;
  options.payload_size = 100;  // Paper defaults: B = 38.
  return options;
}

std::vector<Record> MakeRecords(const Options& options, size_t n) {
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back(
        Record::Put(i * 7 + 1, std::string(options.payload_size, 'x')));
  }
  return records;
}

void BM_RecordBlockEncode(benchmark::State& state) {
  const Options options = MicroOptions();
  const auto records = MakeRecords(options, options.records_per_block());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeRecordBlock(options, records));
  }
  state.SetBytesProcessed(state.iterations() * options.block_size);
}
BENCHMARK(BM_RecordBlockEncode);

void BM_RecordBlockDecode(benchmark::State& state) {
  const Options options = MicroOptions();
  const BlockData data = EncodeRecordBlock(
      options, MakeRecords(options, options.records_per_block()));
  for (auto _ : state) {
    auto records = DecodeRecordBlock(options, data);
    benchmark::DoNotOptimize(records);
  }
  state.SetBytesProcessed(state.iterations() * options.block_size);
}
BENCHMARK(BM_RecordBlockDecode);

void BM_RecordBlockViewParse(benchmark::State& state) {
  // Zero-copy counterpart of BM_RecordBlockDecode: header validation +
  // order check only, no per-record materialization.
  const Options options = MicroOptions();
  const BlockData data = EncodeRecordBlock(
      options, MakeRecords(options, options.records_per_block()));
  for (auto _ : state) {
    auto view = RecordBlockView::Parse(options, data);
    benchmark::DoNotOptimize(view);
  }
  state.SetBytesProcessed(state.iterations() * options.block_size);
}
BENCHMARK(BM_RecordBlockViewParse);

void BM_RecordBlockViewFind(benchmark::State& state) {
  // Parse + in-slot binary search + materialize the one matching record —
  // the per-lookup work of the view-based read path.
  const Options options = MicroOptions();
  const auto records = MakeRecords(options, options.records_per_block());
  const BlockData data = EncodeRecordBlock(options, records);
  Random rng(7);
  const Key max_key = records.back().key;
  for (auto _ : state) {
    auto view_or = RecordBlockView::Parse(options, data);
    size_t slot;
    if (view_or.value().Find(rng.Uniform(max_key) + 1, &slot)) {
      Record r = view_or.value().record_at(slot);
      benchmark::DoNotOptimize(r);
    }
  }
}
BENCHMARK(BM_RecordBlockViewFind);

void BM_MemtablePut(benchmark::State& state) {
  const Options options = MicroOptions();
  Random rng(1);
  Memtable mem;
  const std::string payload(options.payload_size, 'x');
  for (auto _ : state) {
    mem.Put(rng.Uniform(1'000'000'000), payload);
    if (mem.size() > 200'000) {
      state.PauseTiming();
      mem.ExtractAll();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_MemtablePut);

void BM_MemtableGet(benchmark::State& state) {
  const Options options = MicroOptions();
  Random rng(2);
  Memtable mem;
  const std::string payload(options.payload_size, 'x');
  for (int i = 0; i < 100'000; ++i) {
    mem.Put(rng.Uniform(1'000'000'000), payload);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.Get(rng.Uniform(1'000'000'000)));
  }
}
BENCHMARK(BM_MemtableGet);

/// Builds a level with `leaves` synthetic full leaves (metadata only needs
/// the device for splices; lookups read real blocks).
void BuildLevel(const Options& options, MemBlockDevice* device, Level* level,
                size_t leaves) {
  const size_t b = options.records_per_block();
  Key key = 1;
  for (size_t i = 0; i < leaves; ++i) {
    std::vector<Record> records;
    for (size_t j = 0; j < b; ++j) {
      records.push_back(
          Record::Put(key, std::string(options.payload_size, 'x')));
      key += 3;
    }
    auto id = device->WriteNewBlock(EncodeRecordBlock(options, records));
    LSMSSD_CHECK(id.ok());
    level->AppendLeaf(MakeLeafMeta(options, records, id.value()));
    key += 17;
  }
}

void BM_LevelLookup(benchmark::State& state) {
  const Options options = MicroOptions();
  MemBlockDevice device(options.block_size);
  Level level(options, &device, 1);
  BuildLevel(options, &device, &level, state.range(0));
  Random rng(3);
  const Key max_key = level.max_key();
  Record out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(level.Lookup(rng.Uniform(max_key), &out));
  }
}
BENCHMARK(BM_LevelLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_LevelLookupCached(benchmark::State& state) {
  // Lookup through a warm CachedBlockDevice: every block read is a cache
  // hit returning the shared image, so the only per-lookup work is the
  // leaf-directory search plus the in-place slot binary search.
  const Options options = MicroOptions();
  MemBlockDevice base(options.block_size);
  CachedBlockDevice device(&base, static_cast<size_t>(state.range(0)));
  Level level(options, &base, 1);
  BuildLevel(options, &base, &level, state.range(0));
  // Rebind reads through the cache: a level built on `base` would bypass
  // it, so build a cached twin sharing the same blocks.
  Level cached_level(options, &device, 1);
  for (const LeafMeta& m : level.leaves()) cached_level.AppendLeaf(m);
  Record out;
  // Warm: touch every leaf once.
  for (size_t i = 0; i < cached_level.num_leaves(); ++i) {
    LSMSSD_CHECK(cached_level.ReadLeafView(i).ok());
  }
  Random rng(3);
  const Key max_key = cached_level.max_key();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cached_level.Lookup(rng.Uniform(max_key), &out));
  }
  state.counters["cache_hits"] =
      static_cast<double>(device.stats().cache_hits());
  state.counters["cache_misses"] =
      static_cast<double>(device.stats().cache_misses());
}
BENCHMARK(BM_LevelLookupCached)->Arg(100)->Arg(1000)->Arg(10000);

void BM_TreeGetWarmCache(benchmark::State& state) {
  // End-to-end point lookups on a populated tree with the buffer cache and
  // Bloom filters on — the paper's query-side configuration (Section V).
  Options options = MicroOptions();
  options.cache_blocks = 4096;
  options.bloom_bits_per_key = 10;
  // Shrink L0 (default K0 = 4000 blocks would hold the whole dataset in
  // memory) so the bulk of the records lives on cached SSD levels.
  options.level0_capacity_blocks = 64;
  MemBlockDevice device(options.block_size);
  auto tree_or =
      LsmTree::Open(options, &device, CreatePolicy(PolicyKind::kChooseBest));
  LSMSSD_CHECK(tree_or.ok());
  LsmTree& tree = *tree_or.value();
  const std::string payload(options.payload_size, 'x');
  Random rng(11);
  constexpr Key kKeySpace = 200'000;
  for (int i = 0; i < 100'000; ++i) {
    LSMSSD_CHECK(tree.Put(rng.Uniform(kKeySpace) + 1, payload).ok());
  }
  for (int i = 0; i < 5'000; ++i) {  // Warm the cache.
    auto unused = tree.Get(rng.Uniform(kKeySpace) + 1);
    benchmark::DoNotOptimize(unused);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(rng.Uniform(kKeySpace) + 1));
  }
  const IoStats& stats = tree.device()->stats();
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits());
  state.counters["cache_misses"] = static_cast<double>(stats.cache_misses());
  state.counters["bloom_skips"] = static_cast<double>(stats.bloom_skips());
}
BENCHMARK(BM_TreeGetWarmCache);

void BM_ChooseBestScan(benchmark::State& state) {
  // The paper's Section III-C CPU overhead: one simultaneous metadata scan
  // over source and target leaf directories.
  const Options options = MicroOptions();
  MemBlockDevice device(options.block_size);
  Level source(options, &device, 1);
  Level target(options, &device, 2);
  BuildLevel(options, &device, &source, state.range(0));
  BuildLevel(options, &device, &target, state.range(0) * 10);
  const size_t window = std::max<size_t>(1, state.range(0) / 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SelectChooseBestFromLevel(source, target, window));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 11);
}
BENCHMARK(BM_ChooseBestScan)->Arg(100)->Arg(1000)->Arg(4000);

void BM_LruCacheGetHit(benchmark::State& state) {
  LruCache cache(4096);
  for (BlockId id = 0; id < 4096; ++id) cache.Put(id, BlockData(4096, 1));
  Random rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get(rng.Uniform(4096)));
  }
}
BENCHMARK(BM_LruCacheGetHit);

void BM_GoldenSectionSearch(benchmark::State& state) {
  for (auto _ : state) {
    auto result = GoldenSectionMinimize(11, [](size_t i) {
      const double d = static_cast<double>(i) - 4.0;
      return d * d;
    });
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GoldenSectionSearch);

}  // namespace
}  // namespace lsmssd

// BENCHMARK_MAIN(), plus a default JSON sink: unless the caller passed
// --benchmark_out themselves, results also land in BENCH_micro_ops.json so
// successive PRs can diff machine-readable numbers (console output is
// unchanged).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro_ops.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
