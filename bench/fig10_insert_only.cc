// Figure 10: insert-only Normal(0.5%, 10k) — each policy starts from an
// empty index; we track the cumulative average write cost (blocks written
// per MB since the beginning) as the dataset grows.
//
// Paper shape to reproduce: Mixed is the overall winner and Full the
// worst; block-preserving variants beat their "-P" twins much more
// clearly than in the steady-state runs (insert-only Normal concentrates
// keys harder, so preservation fires more).

#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

void Main() {
  const double scale = ScaleFromEnv();
  const Options options = BenchOptions();
  PrintHeader("Figure 10",
              "amortized writes over time while growing an index with "
              "insert-only Normal(0.5%, 10k)",
              options);

  const double final_mb = 4.0 * scale;
  const double sample_mb = 0.5 * scale;

  std::vector<std::string> columns = {"dataset_mb"};
  for (const auto& p : SevenPolicies()) columns.push_back(p.name);
  TablePrinter table(columns);

  // One experiment per policy, sampled in lockstep.
  std::vector<std::unique_ptr<Experiment>> experiments;
  for (const auto& policy : SevenPolicies()) {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kNormal;
    spec.insert_ratio = 1.0;
    auto exp = std::make_unique<Experiment>(options, policy, spec);
    LSMSSD_CHECK(exp->PrepareEmptyInsertOnly().ok());
    experiments.push_back(std::move(exp));
  }

  std::vector<uint64_t> requests(experiments.size(), 0);
  for (double target_mb = sample_mb; target_mb <= final_mb + 1e-9;
       target_mb += sample_mb) {
    std::vector<std::string> row;
    for (size_t i = 0; i < experiments.size(); ++i) {
      Experiment& exp = *experiments[i];
      const uint64_t target_records =
          RecordsForMb(exp.options(), target_mb);
      while (exp.tree().TotalRecords() < target_records) {
        LSMSSD_CHECK(exp.driver().Run(1).ok());
        ++requests[i];
      }
      const double mb_so_far =
          MbForRecords(exp.options(),
                       requests[i]);  // Requests == records (insert-only).
      const double blocks_per_mb =
          static_cast<double>(exp.device().stats().block_writes()) /
          (mb_so_far > 0 ? mb_so_far : 1.0);
      row.push_back(internal_table::FormatCell(blocks_per_mb));
    }
    row.insert(row.begin(), internal_table::FormatCell(target_mb));
    table.AddRow(row);
    std::cerr << "  [fig10] " << target_mb << " MB done\n";
  }
  table.Print(std::cout, "fig10");
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
