// Ablation: the waste threshold epsilon. Section II-B fixes epsilon=0.2
// and Theorem 3 bounds the amortized compaction cost at 1/(1-delta)+o(1)
// per block merged. This sweep shows how epsilon trades preservation
// opportunities (tighter budgets block preservation) against compaction
// frequency, and verifies compactions stay rare at the paper's setting.

#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

void Main() {
  const double scale = ScaleFromEnv();
  PrintHeader("Ablation: epsilon",
              "waste threshold sweep under ChooseBest (Uniform 50/50)",
              BenchOptions());

  const double dataset_mb = 1.5 * scale;
  const double window_mb = 3.0 * scale;

  TablePrinter table({"epsilon", "blocks_per_mb", "preserved_blocks",
                      "compactions", "compaction_share_pct",
                      "amortized_compaction_per_merged_block"});
  for (double epsilon : {0.05, 0.1, 0.2, 0.3, 0.5}) {
    Options options = BenchOptions();
    options.epsilon = epsilon;
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kUniform;
    PolicySpec policy{"ChooseBest", PolicyKind::kChooseBest, true};
    Experiment exp(options, policy, spec);
    Status st = exp.PrepareSteadyState(dataset_mb);
    LSMSSD_CHECK(st.ok()) << st.ToString();
    auto metrics = exp.Measure(window_mb);
    LSMSSD_CHECK(metrics.ok());

    const LsmStats& d = metrics->stats_delta;
    uint64_t preserved = 0, compactions = 0, maintenance = 0, merged = 0;
    for (size_t i = 1; i < exp.tree().num_levels(); ++i) {
      preserved += d.blocks_preserved_into[i];
      compactions += d.compactions[i];
      maintenance += d.maintenance_blocks_written[i];
      merged += d.records_merged_into[i];
    }
    const double merged_blocks =
        static_cast<double>(merged) / options.records_per_block();
    table.AddRowValues(
        epsilon, metrics->BlocksPerMb(), preserved, compactions,
        100.0 * maintenance /
            std::max<uint64_t>(metrics->blocks_written, 1),
        merged_blocks > 0 ? maintenance / merged_blocks : 0.0);
    std::cerr << "  [abl-epsilon] " << epsilon << " done\n";
  }
  table.Print(std::cout, "abl_epsilon");
  std::cout << "\nTheorem 3 check: amortized maintenance per merged block "
               "should stay well below 1/(1-delta) = "
            << 1.0 / (1.0 - BenchOptions().delta) << ".\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
