// Figure 5 (a/b): the measured threshold cost curve C(tau_2) on a 4-level
// index, in 10% increments, under Uniform and Normal.
//
// Paper shape to reproduce: C(tau) is roughly quadratic with a unique
// interior minimum (Theorem 5 predicts a concave-up quadratic), and the
// optimal tau is *smaller* under the skewed Normal workload — partial
// merges profit from skew, so Mixed should stop doing full merges sooner.

#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

std::vector<double> MeasureCurve(const WorkloadSpec& spec,
                                 double dataset_mb) {
  const Options options = BenchOptions();
  PolicySpec mixed{"Mixed", PolicyKind::kMixed, true};
  Experiment exp(options, mixed, spec);
  // Prepare by hand (PrepareSteadyState would run the full learner).
  LSMSSD_CHECK(exp.driver()
                   .GrowTo(RecordsForMb(options, dataset_mb) *
                           options.record_size())
                   .ok());
  exp.workload().set_insert_ratio(spec.insert_ratio);
  LSMSSD_CHECK(exp.tree().num_levels() >= 4u)
      << "dataset too small for an internal L2";

  MixedLearner::Config config;
  config.cycles_per_measurement = 3;  // Smooths single-cycle noise.
  std::vector<double> curve;
  for (int i = 0; i <= 10; ++i) {
    MixedParams params;
    params.tau.assign(exp.tree().num_levels(), 0.0);
    params.tau[2] = i / 10.0;
    auto cost = MixedLearner::MeasureThresholdCost(
        &exp.tree(), exp.driver().RequestFn(), params, 2, config);
    LSMSSD_CHECK(cost.ok()) << cost.status().ToString();
    // The learner's C is per merged *record*; the paper's Figure 5 plots
    // per merged *block*, so scale by B for comparable magnitudes.
    const double per_block =
        cost.value() * static_cast<double>(options.records_per_block());
    curve.push_back(per_block);
    std::cerr << "  [fig05] tau=" << i / 10.0 << " C=" << per_block
              << "\n";
  }
  return curve;
}

void Main() {
  const double scale = ScaleFromEnv();
  const Options options = BenchOptions();
  PrintHeader("Figure 5",
              "measured C(tau_2) on a 4-level index, tau in 10% steps",
              options);

  const double dataset_mb = 4.0 * scale;

  WorkloadSpec uniform;
  uniform.kind = WorkloadKind::kUniform;
  const std::vector<double> cu = MeasureCurve(uniform, dataset_mb);

  WorkloadSpec normal;
  normal.kind = WorkloadKind::kNormal;
  const std::vector<double> cn = MeasureCurve(normal, dataset_mb);

  TablePrinter table({"tau", "C_uniform", "C_normal"});
  size_t best_u = 0, best_n = 0;
  for (size_t i = 0; i < cu.size(); ++i) {
    table.AddRowValues(i / 10.0, cu[i], cn[i]);
    if (cu[i] < cu[best_u]) best_u = i;
    if (cn[i] < cn[best_n]) best_n = i;
  }
  table.Print(std::cout, "fig05");

  std::cout << "\noptimal tau: Uniform=" << best_u / 10.0
            << " Normal=" << best_n / 10.0 << "\n"
            << "paper shape check: unique interior-ish minimum; optimum "
               "under Normal <= optimum under Uniform: "
            << (best_n <= best_u ? "OK" : "MISS") << "\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
