// Figure 3: cumulative blocks written by level over time for Full vs
// ChooseBest on a 3-level steady-state index under Uniform.
//
// Paper shape to reproduce: Full's per-level series are step functions —
// L2 jumps at every (rare, large) merge into the bottom; L1 shows cycles
// of growing jumps. ChooseBest's series are smooth constant-slope lines
// (many small merges of near-equal cost). Merges into L1 cost far more
// in aggregate than merges into L2.

#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

void Main() {
  const double scale = ScaleFromEnv();
  const Options options = BenchOptions();
  PrintHeader("Figure 3",
              "cumulative blocks written by level over time, Full vs "
              "ChooseBest (Uniform 50/50)",
              options);

  const double dataset_mb = 0.8 * scale;  // Bottom level ~30% full, the paper's Fig 3 regime.
  const double total_mb = 12.0 * scale;
  const double sample_mb = 0.25 * scale;

  const std::vector<PolicySpec> policies = {
      {"Full", PolicyKind::kFull, true},
      {"ChooseBest", PolicyKind::kChooseBest, true},
  };

  TablePrinter table({"requests_mb", "policy", "cum_into_L1", "cum_into_L2",
                      "merges_L1", "merges_L2"});
  for (const auto& policy : policies) {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kUniform;
    Experiment exp(options, policy, spec);
    Status st = exp.PrepareSteadyState(dataset_mb);
    LSMSSD_CHECK(st.ok()) << st.ToString();
    LSMSSD_CHECK(exp.tree().num_levels() >= 3u);

    const LsmStats base = exp.tree().stats();
    double elapsed_mb = 0;
    while (elapsed_mb + 1e-9 < total_mb) {
      LSMSSD_CHECK(exp.Measure(sample_mb).ok());
      elapsed_mb += sample_mb;
      const LsmStats delta = exp.tree().stats().DeltaSince(base);
      table.AddRowValues(elapsed_mb, policy.name,
                         delta.BlocksWrittenForLevel(1),
                         delta.BlocksWrittenForLevel(2),
                         delta.merges_into[1], delta.merges_into[2]);
    }
    std::cerr << "  [fig03] " << policy.name << " done\n";
  }
  table.Print(std::cout, "fig03");

  std::cout << "\npaper shape check: under Full, merges into L2 are ~Gamma"
               "x rarer than under ChooseBest (steps vs smooth); cumulative"
               " L1 writes dominate L2 writes for both policies.\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
