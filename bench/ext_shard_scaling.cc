// Extension experiment: write scaling across LSM shards.
//
// The single-shard Db serializes every commit on one lock and funnels
// every sealed memtable through one bounded compaction queue: with
// several writers, the queue sits at the throttle depth and every
// modification pays the soft-backpressure sleep (then, at the hard cap,
// a full stall) — a *Db-wide* convoy, not a per-writer one. Hash
// partitioning the key space over N independent shards (each with its
// own memtable, queue, and compaction worker) divides the load per
// queue by N: the same aggregate write rate no longer holds any single
// queue at its throttle depth, so writers stop sleeping.
//
// This bench sweeps shards in {1, 2, 4, 8} with 4 concurrent writers on
// a queue-tight configuration (2-deep compaction queue, soft throttle
// from the first queued memtable, WAL sync off so fsync does not mask
// scheduling) and reports aggregate put throughput, per-Put latency
// percentiles, and the throttle/stall/arbiter counters that explain the
// curve. Memory stays bounded: each shard's L0 buffer is capped at
// 2*K0 by merge-priority backpressure, and the cross-shard arbiter
// (budget reported in the JSON) never has to fire.
//
// Results land on stdout (table) and in BENCH_shard_scaling.json; the
// headline figure is speedup_4v1 (aggregate throughput, 4 shards vs 1).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/experiment.h"
#include "src/db/db.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace lsmssd::bench {
namespace {

constexpr int kWriters = 4;

struct ShardRunResult {
  size_t shards = 0;
  uint64_t ops = 0;
  double seconds = 0;
  double puts_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t blocks_written = 0;
  uint64_t memtables_sealed = 0;
  uint64_t throttle_events = 0;
  uint64_t throttle_micros = 0;
  uint64_t stall_events = 0;
  uint64_t arbiter_seals = 0;
  uint64_t budget_records = 0;
};

double PercentileUs(const std::vector<uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_ns.size()));
  if (idx >= sorted_ns.size()) idx = sorted_ns.size() - 1;
  return static_cast<double>(sorted_ns[idx]) / 1000.0;
}

/// Queue-tight sharded Db: the default L0 (25 blocks, B=22) with a
/// 2-deep compaction queue and soft backpressure from the first queued
/// memtable — the regime where the Db-wide throttle is the bottleneck.
/// With one shard, a single queued memtable makes *every* writer sleep
/// until the worker drains it; with N shards each queue seals 1/N as
/// often and only ops routed to a draining shard pay. The memory
/// arbiter's default budget (the 1-shard ceiling) would force early
/// seals whose smaller flushes change the *work* per record, not the
/// scheduling, so the sweep pins an explicit per-shard-pipeline budget
/// (N full pipelines — reported in the JSON; memory, not time). WAL
/// syncs and checkpoints stay out of the loop so fsync batching does
/// not mask compaction scheduling.
DbOptions ShardedBenchOptions(size_t shards) {
  DbOptions dbopts;
  dbopts.options = BenchOptions();
  dbopts.options.annihilate_delete_put = false;  // Db requires it off.
  dbopts.policy = PolicyKind::kChooseBest;
  dbopts.wal_sync_mode = WalSyncMode::kNone;
  dbopts.checkpoint_wal_bytes = 0;
  dbopts.background_checkpoint = false;  // No idle maintenance threads.
  dbopts.background_compaction = true;
  dbopts.compaction_queue_depth = 2;
  dbopts.compaction_slowdown_depth = 1;
  // 2x slack keeps the arbiter off the boundary case where every
  // pipeline is momentarily full at once.
  dbopts.shard_memory_budget_records =
      2 * static_cast<uint64_t>(shards) * (dbopts.compaction_queue_depth + 2) *
      dbopts.options.level0_capacity_blocks *
      dbopts.options.records_per_block();
  dbopts.shards = shards;
  return dbopts;
}

ShardRunResult MeasureShardCount(size_t shards, double dataset_mb,
                                 double window_mb, const std::string& dir) {
  std::filesystem::remove_all(dir);
  const DbOptions dbopts = ShardedBenchOptions(shards);
  const Options& options = dbopts.options;
  auto db_or = Db::Open(dbopts, dir);
  LSMSSD_CHECK(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();

  const std::string payload(options.payload_size, 'x');
  const uint64_t grow = RecordsForMb(options, dataset_mb);
  const Key key_space = static_cast<Key>(grow) * 4;  // Insert-heavy mix.
  {
    Random rng(17);
    for (uint64_t i = 0; i < grow; ++i) {
      LSMSSD_CHECK(db.Put(rng.Uniform(key_space) + 1, payload).ok());
    }
  }
  LSMSSD_CHECK(db.WaitForCompaction().ok());
  const DbStats before = db.Stats();

  const uint64_t per_writer = RecordsForMb(options, window_mb) / kWriters;
  std::vector<std::vector<uint64_t>> lat(kWriters);
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  const auto w0 = std::chrono::steady_clock::now();
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(101 + static_cast<uint64_t>(w));
      auto& samples = lat[w];
      samples.reserve(per_writer);
      for (uint64_t i = 0; i < per_writer; ++i) {
        const Key key = rng.Uniform(key_space) + 1;
        const auto t0 = std::chrono::steady_clock::now();
        LSMSSD_CHECK(db.Put(key, payload).ok());
        const auto t1 = std::chrono::steady_clock::now();
        samples.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
    });
  }
  for (auto& t : writers) t.join();
  const auto w1 = std::chrono::steady_clock::now();
  // Queued work is excluded from the window on purpose: the amortized
  // merge cost per record is identical across shard counts (same policy,
  // same Γ), so the interesting difference is who waits for it.
  LSMSSD_CHECK(db.WaitForCompaction().ok());
  const DbStats after = db.Stats();

  std::vector<uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  ShardRunResult r;
  r.shards = shards;
  r.ops = all.size();
  r.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(w1 - w0)
          .count();
  r.puts_per_sec = r.seconds > 0 ? static_cast<double>(r.ops) / r.seconds : 0;
  r.p50_us = PercentileUs(all, 0.50);
  r.p99_us = PercentileUs(all, 0.99);
  r.blocks_written = after.io.block_writes() - before.io.block_writes();
  r.memtables_sealed = after.memtables_sealed - before.memtables_sealed;
  r.throttle_events = after.throttle_events - before.throttle_events;
  r.throttle_micros = after.throttle_micros - before.throttle_micros;
  r.stall_events = after.stall_events - before.stall_events;
  r.arbiter_seals = after.arbiter_seals - before.arbiter_seals;
  r.budget_records = dbopts.shard_memory_budget_records;
  db.Close();
  std::filesystem::remove_all(dir);
  return r;
}

void Main() {
  const double scale = ScaleFromEnv();
  const Options options = BenchOptions();
  PrintHeader("Extension: shard write scaling",
              "aggregate 4-writer put throughput and tail latency vs "
              "shard count (ChooseBest, queue-tight, WAL sync off)",
              options);

  const double dataset_mb = 4.0 * scale;
  const double window_mb = 8.0 * scale;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lsmssd_shard_scaling_bench")
          .string();

  const size_t shard_counts[] = {1, 2, 4, 8};
  std::vector<ShardRunResult> results;
  for (size_t n : shard_counts) {
    results.push_back(MeasureShardCount(n, dataset_mb, window_mb, dir));
    std::cerr << "  [ext-shard] shards=" << n << " done ("
              << static_cast<uint64_t>(results.back().puts_per_sec)
              << " puts/s)\n";
  }

  const double base = results.front().puts_per_sec;
  TablePrinter table({"shards", "puts_per_sec", "speedup", "p50_us",
                      "p99_us", "throttles", "stalls", "arbiter_seals",
                      "blocks"});
  for (const ShardRunResult& r : results) {
    table.AddRowValues(r.shards, static_cast<uint64_t>(r.puts_per_sec),
                       base > 0 ? r.puts_per_sec / base : 0, r.p50_us,
                       r.p99_us, r.throttle_events, r.stall_events,
                       r.arbiter_seals, r.blocks_written);
  }
  table.Print(std::cout, "ext_shard_scaling");

  double speedup_4v1 = 0;
  for (const ShardRunResult& r : results) {
    if (r.shards == 4 && base > 0) speedup_4v1 = r.puts_per_sec / base;
  }
  std::cout << "\nshape check: one shard holds its only queue at the "
               "throttle depth, so most Puts pay the backpressure sleep; "
               "per-shard queues spread the same load until the sleeps "
               "(throttles column) vanish and p99 collapses. Blocks "
               "*fall* with shards: aggregate L0 capacity is N*K0, so "
               "more overwrites die in memory before reaching the "
               "device — the speedup is scheduling plus that extra "
               "absorption, never skipped merges (WaitForCompaction "
               "drains every queue before the stats snapshot). 4-shard "
               "speedup: "
            << speedup_4v1 << "x\n";

  std::string json = "{\n  \"bench\": \"ext_shard_scaling\",\n";
  {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "  \"scale\": %g,\n  \"writers\": %d,\n"
                  "  \"host_cpus\": %u,\n",
                  scale, kWriters, std::thread::hardware_concurrency());
    json += buf;
  }
  json += "  \"sweep\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ShardRunResult& r = results[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"shards\": %zu, \"ops\": %llu, \"seconds\": %.3f, "
        "\"puts_per_sec\": %.1f, \"p50_us\": %.3f, \"p99_us\": %.3f, "
        "\"blocks_written\": %llu, \"memtables_sealed\": %llu, "
        "\"throttle_events\": %llu, \"throttle_micros\": %llu, "
        "\"stall_events\": %llu, \"arbiter_seals\": %llu, "
        "\"budget_records\": %llu}%s\n",
        r.shards, static_cast<unsigned long long>(r.ops), r.seconds,
        r.puts_per_sec, r.p50_us, r.p99_us,
        static_cast<unsigned long long>(r.blocks_written),
        static_cast<unsigned long long>(r.memtables_sealed),
        static_cast<unsigned long long>(r.throttle_events),
        static_cast<unsigned long long>(r.throttle_micros),
        static_cast<unsigned long long>(r.stall_events),
        static_cast<unsigned long long>(r.arbiter_seals),
        static_cast<unsigned long long>(r.budget_records),
        i + 1 < results.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  \"speedup_4v1\": %.2f\n",
                  speedup_4v1);
    json += buf;
  }
  json += "}\n";

  const char* json_path = "BENCH_shard_scaling.json";
  std::ofstream out(json_path);
  out << json;
  out.close();
  std::cerr << "  [ext-shard] wrote " << json_path << "\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
