// Figure 2 (a/b): amortized write cost of Full vs ChooseBest (delta=1/20)
// vs TestMixed across small dataset sizes, under Uniform and
// Normal(0.5%, 10k), 50/50 insert/delete, small K0.
//
// Paper shape to reproduce: ChooseBest consistently below Full with costs
// rising roughly linearly in the bottom-level size (and a lower slope for
// ChooseBest); TestMixed below ChooseBest while the bottom level is small
// (full merges into a small bottom are a good deal), converging back to
// ChooseBest as it fills; ChooseBest's advantage larger under Normal.

#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

void RunWorkload(const std::string& tag, const WorkloadSpec& spec,
                 const std::vector<double>& sizes_mb, double window_mb) {
  Options options = BenchOptions();
  options.delta = 1.0 / 20.0;  // The paper's Figure 2 merge rate.

  const std::vector<PolicySpec> policies = {
      {"Full", PolicyKind::kFull, true},
      {"ChooseBest", PolicyKind::kChooseBest, true},
      {"TestMixed", PolicyKind::kTestMixed, true},
  };

  TablePrinter table(
      {"dataset_mb", "bottom_fill_pct", "Full", "ChooseBest", "TestMixed"});
  for (double size_mb : sizes_mb) {
    std::vector<std::string> row = {internal_table::FormatCell(size_mb)};
    std::string fill;
    for (const auto& policy : policies) {
      Experiment exp(options, policy, spec);
      Status st = exp.PrepareSteadyState(size_mb);
      LSMSSD_CHECK(st.ok()) << st.ToString();
      auto metrics = exp.Measure(window_mb);
      LSMSSD_CHECK(metrics.ok());
      row.push_back(internal_table::FormatCell(metrics->BlocksPerMb()));
      const size_t bottom = exp.tree().num_levels() - 1;
      fill = internal_table::FormatCell(
          100.0 * exp.tree().level(bottom).size_blocks() /
          static_cast<double>(exp.tree().LevelCapacityBlocks(bottom)));
    }
    row.insert(row.begin() + 1, fill);
    table.AddRow(row);
    std::cerr << "  [fig02-" << tag << "] " << size_mb << " MB done\n";
  }
  std::cout << "--- Figure 2" << tag << " ---\n";
  table.Print(std::cout, "fig02" + tag);
  std::cout << "\n";
}

void Main() {
  const double scale = ScaleFromEnv();
  Options options = BenchOptions();
  options.delta = 1.0 / 20.0;
  PrintHeader("Figure 2",
              "amortized cost of Full vs ChooseBest (delta=1/20) vs "
              "TestMixed across dataset sizes (50/50 mix)",
              options);

  // The paper's 20..100 MB span covers ~20%..100% bottom-level fullness of
  // a 3-level tree; these sizes cover the same fill range at bench scale.
  std::vector<double> sizes_mb;
  for (double s : {0.6, 1.0, 1.4, 1.8, 2.2, 2.6}) {
    sizes_mb.push_back(s * scale);
  }
  const double window_mb = 2.0 * scale;

  WorkloadSpec uniform;
  uniform.kind = WorkloadKind::kUniform;
  RunWorkload("a-Uniform", uniform, sizes_mb, window_mb);

  WorkloadSpec normal;
  normal.kind = WorkloadKind::kNormal;
  RunWorkload("b-Normal", normal, sizes_mb, window_mb);
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
