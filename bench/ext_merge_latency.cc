// Extension experiment: per-merge cost distribution. The paper's §III
// motivation for ChooseBest is not only the amortized cost but the
// *worst-case single merge*: Full (and unlucky RR) merges can rewrite the
// entire next level, stalling the index; every ChooseBest merge is capped
// by Theorem 2. We sample the write cost of each individual merge into
// the bottom level and report the distribution (mean / p50 / p99 / max).

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

struct Distribution {
  double mean = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
  size_t merges = 0;
};

Distribution Summarize(std::vector<uint64_t> samples) {
  Distribution d;
  if (samples.empty()) return d;
  std::sort(samples.begin(), samples.end());
  d.merges = samples.size();
  uint64_t sum = 0;
  for (uint64_t v : samples) sum += v;
  d.mean = static_cast<double>(sum) / samples.size();
  d.p50 = samples[samples.size() / 2];
  d.p99 = samples[samples.size() * 99 / 100];
  d.max = samples.back();
  return d;
}

Distribution MeasureMergeCosts(const PolicySpec& policy, double dataset_mb,
                               double window_mb) {
  const Options options = BenchOptions();
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kUniform;
  Experiment exp(options, policy, spec);
  Status st = exp.PrepareSteadyState(dataset_mb);
  LSMSSD_CHECK(st.ok()) << st.ToString();

  const size_t bottom = exp.tree().num_levels() - 1;
  std::vector<uint64_t> samples;
  uint64_t prev_merges = exp.tree().stats().merges_into[bottom];
  uint64_t prev_cost = exp.tree().stats().BlocksWrittenForLevel(bottom);
  const uint64_t requests = RecordsForMb(options, window_mb);
  for (uint64_t i = 0; i < requests; ++i) {
    LSMSSD_CHECK(exp.driver().Run(1).ok());
    const LsmStats& s = exp.tree().stats();
    const uint64_t merges = s.merges_into[bottom];
    const uint64_t cost = s.BlocksWrittenForLevel(bottom);
    if (merges == prev_merges + 1) samples.push_back(cost - prev_cost);
    prev_merges = merges;
    prev_cost = cost;
  }
  return Summarize(std::move(samples));
}

void Main() {
  const double scale = ScaleFromEnv();
  const Options options = BenchOptions();
  PrintHeader("Extension: per-merge latency",
              "write-cost distribution of individual merges into the "
              "bottom level (Uniform 50/50)",
              options);

  const double dataset_mb = 1.5 * scale;
  const double window_mb = 8.0 * scale;

  TablePrinter table({"policy", "merges", "mean_blocks", "p50", "p99",
                      "max", "theorem2_cap"});
  const double cap = options.delta * (1.0 / options.gamma + 1.0) *
                     static_cast<double>(options.LevelCapacityBlocks(2));
  for (const auto& policy : FourPreservingPolicies()) {
    if (policy.kind == PolicyKind::kMixed) continue;  // Learned elsewhere.
    const Distribution d =
        MeasureMergeCosts(policy, dataset_mb, window_mb);
    table.AddRowValues(policy.name, d.merges, d.mean, d.p50, d.p99, d.max,
                       policy.kind == PolicyKind::kChooseBest
                           ? internal_table::FormatCell(cap)
                           : std::string("-"));
    std::cerr << "  [ext-latency] " << policy.name << " done\n";
  }
  table.Print(std::cout, "ext_merge_latency");
  std::cout << "\nshape check: Full's max equals the whole bottom level; "
               "ChooseBest's max stays under the Theorem 2 cap (plus its "
               "own window), giving far lower tail latency.\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
