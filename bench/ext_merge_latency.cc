// Extension experiment: merge latency, two ways.
//
// Part 1 (paper §III motivation): per-merge write-cost distribution. The
// case for ChooseBest is not only the amortized cost but the *worst-case
// single merge*: Full (and unlucky RR) merges can rewrite the entire next
// level, stalling the index; every ChooseBest merge is capped by Theorem 2.
// We sample the write cost of each individual merge into the bottom level
// and report the distribution (mean / p50 / p99 / max).
//
// Part 2 (this repo's background-compaction pipeline): per-Put *latency*
// distribution, inline vs background, on a durable Db over a real
// FileBlockDevice with four concurrent writers. Inline mode runs the merge
// cascade in the overflowing writer while every other writer queues behind
// the commit lock; background mode seals the memtable onto the compaction
// queue and returns. Both modes do the same logical work (equal amortized
// block writes); only who pays the merge changes. IoStats syscall/batch
// counters show the vectored pwritev path underneath.
//
// Results land on stdout (tables) and in BENCH_merge_latency.json so future
// PRs can track the trajectory.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/experiment.h"
#include "src/db/db.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace lsmssd::bench {
namespace {

struct Distribution {
  double mean = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
  size_t merges = 0;
};

Distribution Summarize(std::vector<uint64_t> samples) {
  Distribution d;
  if (samples.empty()) return d;
  std::sort(samples.begin(), samples.end());
  d.merges = samples.size();
  uint64_t sum = 0;
  for (uint64_t v : samples) sum += v;
  d.mean = static_cast<double>(sum) / samples.size();
  d.p50 = samples[samples.size() / 2];
  d.p99 = samples[samples.size() * 99 / 100];
  d.max = samples.back();
  return d;
}

Distribution MeasureMergeCosts(const PolicySpec& policy, double dataset_mb,
                               double window_mb) {
  const Options options = BenchOptions();
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kUniform;
  Experiment exp(options, policy, spec);
  Status st = exp.PrepareSteadyState(dataset_mb);
  LSMSSD_CHECK(st.ok()) << st.ToString();

  const size_t bottom = exp.tree().num_levels() - 1;
  std::vector<uint64_t> samples;
  uint64_t prev_merges = exp.tree().stats().merges_into[bottom];
  uint64_t prev_cost = exp.tree().stats().BlocksWrittenForLevel(bottom);
  const uint64_t requests = RecordsForMb(options, window_mb);
  for (uint64_t i = 0; i < requests; ++i) {
    LSMSSD_CHECK(exp.driver().Run(1).ok());
    const LsmStats& s = exp.tree().stats();
    const uint64_t merges = s.merges_into[bottom];
    const uint64_t cost = s.BlocksWrittenForLevel(bottom);
    if (merges == prev_merges + 1) samples.push_back(cost - prev_cost);
    prev_merges = merges;
    prev_cost = cost;
  }
  return Summarize(std::move(samples));
}

// ---- Part 2: per-Put latency, inline vs background ----------------------

struct PutLatency {
  uint64_t ops = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double max_us = 0;
  uint64_t blocks_written = 0;   ///< Device writes over the window.
  uint64_t write_syscalls = 0;   ///< pwrite/pwritev issued for them.
  uint64_t batch_writes = 0;     ///< Multi-block WriteBlocks calls.
  uint64_t batched_blocks_written = 0;
  uint64_t memtables_sealed = 0;
  uint64_t stall_events = 0;
  uint64_t throttle_events = 0;
};

double PercentileUs(const std::vector<uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_ns.size()));
  if (idx >= sorted_ns.size()) idx = sorted_ns.size() - 1;
  return static_cast<double>(sorted_ns[idx]) / 1000.0;
}

/// Merge-heavy Db configuration: a small L0 (4 blocks) seals the memtable
/// every ~90 Puts, so >1% of ops trigger a flush-or-cascade — enough that
/// the p99 captures who pays for merges. WAL syncs and checkpoints are
/// kept out of the loop (kNone, manual checkpoints only) so the tails
/// measure compaction scheduling, not fsync.
DbOptions MergeHeavyDbOptions(bool background) {
  DbOptions dbopts;
  dbopts.options = BenchOptions();
  dbopts.options.level0_capacity_blocks = 4;
  // Db refuses annihilate_delete_put (WAL replay re-applies history
  // tails); the workload here is Put-only anyway.
  dbopts.options.annihilate_delete_put = false;
  dbopts.policy = PolicyKind::kChooseBest;
  dbopts.wal_sync_mode = WalSyncMode::kNone;
  dbopts.checkpoint_wal_bytes = 0;
  dbopts.background_compaction = background;
  // A deep queue keeps hard stalls rare (worker catch-up bursts during
  // L1->L2 cascades): still only ~16 * K0 * B records of memory.
  dbopts.compaction_queue_depth = 16;
  dbopts.compaction_slowdown_depth = 0;  // Measure pure stalls, no throttle.
  return dbopts;
}

PutLatency MeasurePutLatency(bool background, double dataset_mb,
                             double window_mb, const std::string& dir) {
  std::filesystem::remove_all(dir);
  const DbOptions dbopts = MergeHeavyDbOptions(background);
  const Options& options = dbopts.options;
  auto db_or = Db::Open(dbopts, dir);
  LSMSSD_CHECK(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();

  const std::string payload(options.payload_size, 'x');
  const uint64_t grow = RecordsForMb(options, dataset_mb);
  const Key key_space = static_cast<Key>(grow) * 4;  // Insert-heavy mix.
  {
    Random rng(17);
    for (uint64_t i = 0; i < grow; ++i) {
      LSMSSD_CHECK(db.Put(rng.Uniform(key_space) + 1, payload).ok());
    }
  }
  LSMSSD_CHECK(db.WaitForCompaction().ok());
  const DbStats before = db.Stats();

  constexpr int kWriters = 4;
  const uint64_t per_writer = RecordsForMb(options, window_mb) / kWriters;
  std::vector<std::vector<uint64_t>> lat(kWriters);
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(101 + static_cast<uint64_t>(w));
      auto& samples = lat[w];
      samples.reserve(per_writer);
      for (uint64_t i = 0; i < per_writer; ++i) {
        const Key key = rng.Uniform(key_space) + 1;
        const auto t0 = std::chrono::steady_clock::now();
        LSMSSD_CHECK(db.Put(key, payload).ok());
        const auto t1 = std::chrono::steady_clock::now();
        samples.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
    });
  }
  for (auto& t : writers) t.join();
  // Drain queued work so both modes account the same amortized writes.
  LSMSSD_CHECK(db.WaitForCompaction().ok());
  const DbStats after = db.Stats();

  std::vector<uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  PutLatency r;
  r.ops = all.size();
  uint64_t sum = 0;
  for (uint64_t v : all) sum += v;
  r.mean_us = all.empty()
                  ? 0
                  : static_cast<double>(sum) / all.size() / 1000.0;
  r.p50_us = PercentileUs(all, 0.50);
  r.p95_us = PercentileUs(all, 0.95);
  r.p99_us = PercentileUs(all, 0.99);
  r.max_us = all.empty() ? 0 : static_cast<double>(all.back()) / 1000.0;
  r.blocks_written = after.io.block_writes() - before.io.block_writes();
  r.write_syscalls = after.io.write_syscalls() - before.io.write_syscalls();
  r.batch_writes = after.io.batch_writes() - before.io.batch_writes();
  r.batched_blocks_written =
      after.io.batched_blocks_written() - before.io.batched_blocks_written();
  r.memtables_sealed = after.memtables_sealed - before.memtables_sealed;
  r.stall_events = after.stall_events - before.stall_events;
  r.throttle_events = after.throttle_events - before.throttle_events;
  db.Close();
  std::filesystem::remove_all(dir);
  return r;
}

// ---- Part 3: latency over time, worker pool + rate limiter --------------
//
// The head-of-line question: with one worker, a long merge parks every
// queued flush behind it and the writers ride the stall wall in bursts —
// visible not in the aggregate p99 but in its *variance over time*. Part 3
// samples (timestamp, latency) pairs, slices the run into fixed wall-clock
// windows, and reports the per-window p99's mean/stddev/max at 1 worker
// (unpaced baseline) and at 2/4 workers with the merge rate limiter on
// (rate = ~1.5x the baseline's observed merge write rate, so pacing
// smooths bursts without starving throughput).

struct TimedSample {
  uint64_t t_ns;    ///< Offset from the measurement window's start.
  uint64_t lat_ns;  ///< That Put's latency.
};

struct WindowedLatency {
  size_t workers = 0;
  uint64_t rate_limit = 0;  ///< blocks/sec; 0 = unpaced.
  uint64_t ops = 0;
  double p99_us = 0;              ///< Whole-run p99.
  size_t windows = 0;
  double window_p99_mean_us = 0;  ///< Mean of per-window p99s.
  double window_p99_stddev_us = 0;
  double window_p99_max_us = 0;
  double elapsed_s = 0;
  uint64_t blocks_written = 0;
  uint64_t stall_events = 0;
  uint64_t rate_pauses = 0;
};

WindowedLatency MeasureLatencyOverTime(size_t workers, uint64_t rate_limit,
                                       double dataset_mb, double window_mb,
                                       const std::string& dir) {
  std::filesystem::remove_all(dir);
  DbOptions dbopts = MergeHeavyDbOptions(/*background=*/true);
  dbopts.compaction_workers = workers;
  dbopts.compaction_rate_limit_blocks_per_sec = rate_limit;
  const Options& options = dbopts.options;
  auto db_or = Db::Open(dbopts, dir);
  LSMSSD_CHECK(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();

  const std::string payload(options.payload_size, 'x');
  const uint64_t grow = RecordsForMb(options, dataset_mb);
  const Key key_space = static_cast<Key>(grow) * 4;
  {
    Random rng(23);
    for (uint64_t i = 0; i < grow; ++i) {
      LSMSSD_CHECK(db.Put(rng.Uniform(key_space) + 1, payload).ok());
    }
  }
  LSMSSD_CHECK(db.WaitForCompaction().ok());
  const DbStats before = db.Stats();

  constexpr int kWriters = 4;
  const uint64_t per_writer = RecordsForMb(options, window_mb) / kWriters;
  std::vector<std::vector<TimedSample>> lat(kWriters);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(211 + static_cast<uint64_t>(w));
      auto& samples = lat[w];
      samples.reserve(per_writer);
      for (uint64_t i = 0; i < per_writer; ++i) {
        const Key key = rng.Uniform(key_space) + 1;
        const auto t0 = std::chrono::steady_clock::now();
        LSMSSD_CHECK(db.Put(key, payload).ok());
        const auto t1 = std::chrono::steady_clock::now();
        samples.push_back(
            {static_cast<uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(t0 -
                                                                      start)
                     .count()),
             static_cast<uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                     .count())});
      }
    });
  }
  for (auto& t : writers) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  LSMSSD_CHECK(db.WaitForCompaction().ok());
  const DbStats after = db.Stats();

  std::vector<TimedSample> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());

  WindowedLatency r;
  r.workers = workers;
  r.rate_limit = rate_limit;
  r.ops = all.size();
  r.elapsed_s = elapsed_s;
  r.blocks_written = after.io.block_writes() - before.io.block_writes();
  r.stall_events = after.stall_events - before.stall_events;
  r.rate_pauses = after.compaction_rate_pauses - before.compaction_rate_pauses;

  std::vector<uint64_t> flat;
  flat.reserve(all.size());
  for (const TimedSample& s : all) flat.push_back(s.lat_ns);
  std::sort(flat.begin(), flat.end());
  r.p99_us = PercentileUs(flat, 0.99);

  // Slice into fixed wall-clock windows and take each window's p99. Thin
  // windows (tail stragglers) are skipped — a p99 of 20 samples is noise.
  constexpr size_t kWindows = 32;
  uint64_t t_max = 0;
  for (const TimedSample& s : all) t_max = std::max(t_max, s.t_ns);
  const uint64_t width = t_max / kWindows + 1;
  std::vector<std::vector<uint64_t>> windows(kWindows);
  for (const TimedSample& s : all) {
    windows[std::min(kWindows - 1, static_cast<size_t>(s.t_ns / width))]
        .push_back(s.lat_ns);
  }
  std::vector<double> p99s;
  const size_t min_samples = std::max<size_t>(64, all.size() / kWindows / 8);
  for (auto& w : windows) {
    if (w.size() < min_samples) continue;
    std::sort(w.begin(), w.end());
    p99s.push_back(PercentileUs(w, 0.99));
  }
  r.windows = p99s.size();
  if (!p99s.empty()) {
    double sum = 0;
    for (double v : p99s) sum += v;
    r.window_p99_mean_us = sum / static_cast<double>(p99s.size());
    double var = 0;
    for (double v : p99s) {
      var += (v - r.window_p99_mean_us) * (v - r.window_p99_mean_us);
    }
    var /= static_cast<double>(p99s.size());
    r.window_p99_stddev_us = std::sqrt(var);
    r.window_p99_max_us = *std::max_element(p99s.begin(), p99s.end());
  }
  db.Close();
  std::filesystem::remove_all(dir);
  return r;
}

void AppendWindowedJson(std::string* out, const WindowedLatency& r,
                        bool first) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s    {\"workers\": %zu, \"rate_limit_blocks_per_sec\": %llu, "
      "\"ops\": %llu, \"p99_us\": %.3f, \"windows\": %zu, "
      "\"window_p99_mean_us\": %.3f, \"window_p99_stddev_us\": %.3f, "
      "\"window_p99_max_us\": %.3f, \"elapsed_s\": %.3f, "
      "\"blocks_written\": %llu, \"stall_events\": %llu, "
      "\"rate_pauses\": %llu}",
      first ? "" : ",\n", r.workers,
      static_cast<unsigned long long>(r.rate_limit),
      static_cast<unsigned long long>(r.ops), r.p99_us, r.windows,
      r.window_p99_mean_us, r.window_p99_stddev_us, r.window_p99_max_us,
      r.elapsed_s, static_cast<unsigned long long>(r.blocks_written),
      static_cast<unsigned long long>(r.stall_events),
      static_cast<unsigned long long>(r.rate_pauses));
  *out += buf;
}

void AppendPutLatencyJson(std::string* out, const std::string& name,
                          const PutLatency& r) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "    \"%s\": {\"ops\": %llu, \"mean_us\": %.3f, \"p50_us\": %.3f, "
      "\"p95_us\": %.3f, \"p99_us\": %.3f, \"max_us\": %.3f, "
      "\"blocks_written\": %llu, \"write_syscalls\": %llu, "
      "\"batch_writes\": %llu, \"batched_blocks_written\": %llu, "
      "\"memtables_sealed\": %llu, \"stall_events\": %llu, "
      "\"throttle_events\": %llu}",
      name.c_str(), static_cast<unsigned long long>(r.ops), r.mean_us,
      r.p50_us, r.p95_us, r.p99_us, r.max_us,
      static_cast<unsigned long long>(r.blocks_written),
      static_cast<unsigned long long>(r.write_syscalls),
      static_cast<unsigned long long>(r.batch_writes),
      static_cast<unsigned long long>(r.batched_blocks_written),
      static_cast<unsigned long long>(r.memtables_sealed),
      static_cast<unsigned long long>(r.stall_events),
      static_cast<unsigned long long>(r.throttle_events));
  *out += buf;
}

void Main() {
  const double scale = ScaleFromEnv();
  const Options options = BenchOptions();
  PrintHeader("Extension: per-merge latency",
              "write-cost distribution of individual merges into the "
              "bottom level (Uniform 50/50)",
              options);

  const double dataset_mb = 1.5 * scale;
  const double window_mb = 8.0 * scale;

  std::string json = "{\n  \"bench\": \"ext_merge_latency\",\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  \"scale\": %g,\n", scale);
    json += buf;
  }
  json += "  \"per_merge_write_cost\": [\n";

  TablePrinter table({"policy", "merges", "mean_blocks", "p50", "p99",
                      "max", "theorem2_cap"});
  const double cap = options.delta * (1.0 / options.gamma + 1.0) *
                     static_cast<double>(options.LevelCapacityBlocks(2));
  bool first = true;
  for (const auto& policy : FourPreservingPolicies()) {
    if (policy.kind == PolicyKind::kMixed) continue;  // Learned elsewhere.
    const Distribution d =
        MeasureMergeCosts(policy, dataset_mb, window_mb);
    table.AddRowValues(policy.name, d.merges, d.mean, d.p50, d.p99, d.max,
                       policy.kind == PolicyKind::kChooseBest
                           ? internal_table::FormatCell(cap)
                           : std::string("-"));
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s    {\"policy\": \"%s\", \"merges\": %zu, "
                  "\"mean_blocks\": %.2f, \"p50\": %llu, \"p99\": %llu, "
                  "\"max\": %llu}",
                  first ? "" : ",\n", policy.name.c_str(), d.merges, d.mean,
                  static_cast<unsigned long long>(d.p50),
                  static_cast<unsigned long long>(d.p99),
                  static_cast<unsigned long long>(d.max));
    json += buf;
    first = false;
    std::cerr << "  [ext-latency] " << policy.name << " done\n";
  }
  json += "\n  ],\n";
  table.Print(std::cout, "ext_merge_latency");
  std::cout << "\nshape check: Full's max equals the whole bottom level; "
               "ChooseBest's max stays under the Theorem 2 cap (plus its "
               "own window), giving far lower tail latency.\n";

  // ---- Part 2: per-Put stall latency, inline vs background ------------
  std::cout << "\nPer-Put latency, 4 concurrent writers on a durable Db "
               "(ChooseBest, small L0, WAL sync off):\n";
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lsmssd_merge_latency_bench")
          .string();
  const double db_dataset_mb = 0.5 * scale;
  const double db_window_mb = 2.0 * scale;
  const PutLatency inline_r =
      MeasurePutLatency(/*background=*/false, db_dataset_mb, db_window_mb,
                        dir);
  std::cerr << "  [ext-latency] inline compaction done\n";
  const PutLatency bg_r =
      MeasurePutLatency(/*background=*/true, db_dataset_mb, db_window_mb,
                        dir);
  std::cerr << "  [ext-latency] background compaction done\n";

  TablePrinter put_table({"mode", "ops", "mean_us", "p50_us", "p95_us",
                          "p99_us", "max_us", "blocks", "write_syscalls",
                          "stalls"});
  put_table.AddRowValues("inline", inline_r.ops, inline_r.mean_us,
                         inline_r.p50_us, inline_r.p95_us, inline_r.p99_us,
                         inline_r.max_us, inline_r.blocks_written,
                         inline_r.write_syscalls, inline_r.stall_events);
  put_table.AddRowValues("background", bg_r.ops, bg_r.mean_us, bg_r.p50_us,
                         bg_r.p95_us, bg_r.p99_us, bg_r.max_us,
                         bg_r.blocks_written, bg_r.write_syscalls,
                         bg_r.stall_events);
  put_table.Print(std::cout, "ext_put_latency");
  const double speedup =
      bg_r.p99_us > 0 ? inline_r.p99_us / bg_r.p99_us : 0;
  std::cout << "\nshape check: background p99 should be >= 10x lower than "
               "inline (merges moved off the commit path) at equal "
               "amortized block writes; write_syscalls under 2x blocks — "
               "the data+sidecar cost a per-block path pays — because "
               "vectored pwritev coalesces contiguous runs. p99 speedup: "
            << speedup << "x\n";

  json += "  \"put_latency\": {\n";
  AppendPutLatencyJson(&json, "inline", inline_r);
  json += ",\n";
  AppendPutLatencyJson(&json, "background", bg_r);
  json += ",\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "    \"p99_speedup\": %.2f\n", speedup);
    json += buf;
  }
  json += "  },\n";

  // ---- Part 3: latency over time, worker pool + rate limiter ----------
  std::cout << "\nLatency over time (32 wall-clock windows, 4 writers): "
               "1 worker unpaced vs 2/4 workers rate-limited:\n";
  const WindowedLatency base = MeasureLatencyOverTime(
      /*workers=*/1, /*rate_limit=*/0, db_dataset_mb, db_window_mb, dir);
  std::cerr << "  [ext-latency] windowed: 1 worker (baseline) done\n";
  // Pace the pool at ~1.5x the baseline's observed merge write rate:
  // enough headroom that throughput is not starved, tight enough that a
  // cascade's write burst is actually smoothed across the window.
  const uint64_t paced_rate =
      base.elapsed_s > 0
          ? static_cast<uint64_t>(1.5 * static_cast<double>(
                                            base.blocks_written) /
                                  base.elapsed_s) +
                1
          : 0;
  const WindowedLatency two = MeasureLatencyOverTime(
      /*workers=*/2, paced_rate, db_dataset_mb, db_window_mb, dir);
  std::cerr << "  [ext-latency] windowed: 2 workers rate-limited done\n";
  const WindowedLatency four = MeasureLatencyOverTime(
      /*workers=*/4, paced_rate, db_dataset_mb, db_window_mb, dir);
  std::cerr << "  [ext-latency] windowed: 4 workers rate-limited done\n";

  TablePrinter wt({"workers", "rate_limit", "p99_us", "win_p99_mean",
                   "win_p99_stddev", "win_p99_max", "stalls", "rate_pauses"});
  for (const WindowedLatency* r : {&base, &two, &four}) {
    wt.AddRowValues(r->workers, r->rate_limit, r->p99_us,
                    r->window_p99_mean_us, r->window_p99_stddev_us,
                    r->window_p99_max_us, r->stall_events, r->rate_pauses);
  }
  wt.Print(std::cout, "ext_latency_over_time");
  // A multi-worker config "improves" when its latency-over-time curve is
  // flatter (lower per-window p99 stddev) AND its whole-run p99 is no
  // worse than the 1-worker unpaced baseline. Judge each paced config and
  // the pair: on a loaded or single-CPU host one of the two worker counts
  // can lose the stddev coin-flip to scheduler noise while the other wins
  // every axis, so the headline boolean is "some worker count >= 2".
  const auto improves = [&base](const WindowedLatency& r) {
    const bool variance_lower =
        r.window_p99_stddev_us <= base.window_p99_stddev_us;
    const bool p99_no_worse = base.p99_us <= 0 || r.p99_us <= base.p99_us * 1.1;
    return std::make_pair(variance_lower, p99_no_worse);
  };
  const auto [two_var, two_p99] = improves(two);
  const auto [four_var, four_p99] = improves(four);
  const bool multi_improves = (two_var && two_p99) || (four_var && four_p99);
  std::cout << "\nshape check: parallel workers + pacing should flatten the "
               "latency-over-time curve — per-window p99 stddev at 2+ workers "
               "rate-limited at or below the 1-worker baseline ("
            << two.window_p99_stddev_us << " / " << four.window_p99_stddev_us
            << " vs " << base.window_p99_stddev_us
            << " us), with whole-run p99 no worse (" << two.p99_us << " / "
            << four.p99_us << " vs " << base.p99_us << " us).\n";

  json += "  \"latency_over_time\": [\n";
  AppendWindowedJson(&json, base, /*first=*/true);
  AppendWindowedJson(&json, two, /*first=*/false);
  AppendWindowedJson(&json, four, /*first=*/false);
  json += "\n  ],\n";
  {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "  \"comparison\": {\"variance_lower_at_2_workers\": %s, "
                  "\"p99_no_worse_at_2_workers\": %s, "
                  "\"variance_lower_at_4_workers\": %s, "
                  "\"p99_no_worse_at_4_workers\": %s, "
                  "\"multi_worker_improves\": %s}\n",
                  two_var ? "true" : "false", two_p99 ? "true" : "false",
                  four_var ? "true" : "false", four_p99 ? "true" : "false",
                  multi_improves ? "true" : "false");
    json += buf;
  }
  json += "}\n";

  const char* json_path = "BENCH_merge_latency.json";
  std::ofstream out(json_path);
  out << json;
  out.close();
  std::cerr << "  [ext-latency] wrote " << json_path << "\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
