// Ablation: the merge rate delta. Theorem 2 caps every ChooseBest merge
// into L_i at delta * (1/Gamma + 1) * K_i blocks, so delta directly
// trades per-merge latency against merge frequency. This sweep reports
// the amortized cost and the observed worst single merge against the
// bound.

#include <algorithm>
#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

void Main() {
  const double scale = ScaleFromEnv();
  PrintHeader("Ablation: delta",
              "merge rate sweep under ChooseBest (Uniform 50/50)",
              BenchOptions());

  const double dataset_mb = 1.5 * scale;
  const double window_mb = 3.0 * scale;

  TablePrinter table({"delta", "blocks_per_mb", "max_single_merge_L2",
                      "theorem2_bound_L2", "merges_into_L2"});
  for (double delta : {0.02, 0.05, 0.07, 0.1, 0.2}) {
    Options options = BenchOptions();
    options.delta = delta;
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kUniform;
    PolicySpec policy{"ChooseBest", PolicyKind::kChooseBest, true};
    Experiment exp(options, policy, spec);
    Status st = exp.PrepareSteadyState(dataset_mb);
    LSMSSD_CHECK(st.ok()) << st.ToString();

    // Sample per-merge write deltas into L2 across the window.
    uint64_t prev_writes = exp.tree().stats().blocks_written_into[2];
    uint64_t prev_merges = exp.tree().stats().merges_into[2];
    uint64_t max_single = 0;
    const uint64_t window_requests =
        RecordsForMb(options, window_mb);
    const uint64_t device_before = exp.device().stats().block_writes();
    for (uint64_t i = 0; i < window_requests; ++i) {
      LSMSSD_CHECK(exp.driver().Run(1).ok());
      const LsmStats& s = exp.tree().stats();
      if (s.merges_into[2] == prev_merges + 1) {
        max_single =
            std::max(max_single, s.blocks_written_into[2] - prev_writes);
      }
      prev_merges = s.merges_into[2];
      prev_writes = s.blocks_written_into[2];
    }
    const double blocks_per_mb =
        static_cast<double>(exp.device().stats().block_writes() -
                            device_before) /
        window_mb;
    // Theorem 2 bound, plus the X window itself (output includes X's own
    // data re-written into L2).
    const double bound =
        delta * (1.0 / options.gamma + 1.0) *
        static_cast<double>(options.LevelCapacityBlocks(2));
    table.AddRowValues(delta, blocks_per_mb, max_single, bound,
                       exp.tree().stats().merges_into[2]);
    std::cerr << "  [abl-delta] " << delta << " done\n";
  }
  table.Print(std::cout, "abl_delta");
  std::cout << "\nTheorem 2 check: max_single_merge_L2 <= theorem2_bound_L2 "
               "(+ a pairwise-repair block) for every delta.\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
