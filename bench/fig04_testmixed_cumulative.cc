// Figure 4: the Figure 3 plot extended with TestMixed (ChooseBest from
// L0, Full into the bottom) on the same 3-level setup.
//
// Paper shape to reproduce: TestMixed's cumulative cost into L1 is the
// lowest of the three (periodically emptying L1 with full merges makes
// partial merges into it cheaper); its cost into L2 tracks Full's; its
// total beats both Full (~34% in the paper) and ChooseBest (~20%).

#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

struct Totals {
  uint64_t l1 = 0;
  uint64_t l2 = 0;
  uint64_t total() const { return l1 + l2; }
};

void Main() {
  const double scale = ScaleFromEnv();
  const Options options = BenchOptions();
  PrintHeader("Figure 4",
              "cumulative blocks written by level over time: TestMixed vs "
              "Full vs ChooseBest (Uniform 50/50)",
              options);

  const double dataset_mb = 0.8 * scale;  // Bottom level ~30% full, the paper's Fig 3 regime.
  const double total_mb = 12.0 * scale;
  const double sample_mb = 0.25 * scale;

  const std::vector<PolicySpec> policies = {
      {"Full", PolicyKind::kFull, true},
      {"ChooseBest", PolicyKind::kChooseBest, true},
      {"TestMixed", PolicyKind::kTestMixed, true},
  };

  TablePrinter table(
      {"requests_mb", "policy", "cum_into_L1", "cum_into_L2"});
  std::vector<Totals> totals;
  for (const auto& policy : policies) {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kUniform;
    Experiment exp(options, policy, spec);
    Status st = exp.PrepareSteadyState(dataset_mb);
    LSMSSD_CHECK(st.ok()) << st.ToString();
    LSMSSD_CHECK(exp.tree().num_levels() >= 3u);

    const LsmStats base = exp.tree().stats();
    double elapsed_mb = 0;
    while (elapsed_mb + 1e-9 < total_mb) {
      LSMSSD_CHECK(exp.Measure(sample_mb).ok());
      elapsed_mb += sample_mb;
      const LsmStats delta = exp.tree().stats().DeltaSince(base);
      table.AddRowValues(elapsed_mb, policy.name,
                         delta.BlocksWrittenForLevel(1),
                         delta.BlocksWrittenForLevel(2));
    }
    const LsmStats final_delta = exp.tree().stats().DeltaSince(base);
    totals.push_back(Totals{final_delta.BlocksWrittenForLevel(1),
                            final_delta.BlocksWrittenForLevel(2)});
    std::cerr << "  [fig04] " << policy.name << " done\n";
  }
  table.Print(std::cout, "fig04");

  const double vs_full =
      100.0 * (1.0 - static_cast<double>(totals[2].total()) /
                         static_cast<double>(totals[0].total()));
  const double vs_cb =
      100.0 * (1.0 - static_cast<double>(totals[2].total()) /
                         static_cast<double>(totals[1].total()));
  std::cout << "\ntotals: Full=" << totals[0].total()
            << " ChooseBest=" << totals[1].total()
            << " TestMixed=" << totals[2].total() << "\n"
            << "TestMixed saves " << vs_full << "% vs Full (paper: ~34%) and "
            << vs_cb << "% vs ChooseBest (paper: ~20%)\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
