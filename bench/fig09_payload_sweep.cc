// Figure 9: effect of record payload size on block preservation — fixed
// dataset size, Uniform 50/50, payload sweeping so records-per-block B
// runs from dozens down to 1.
//
// Paper shape to reproduce: "-P" policies are flat across payload sizes;
// block-preserving policies improve steadily as payloads grow (fewer
// records per block -> more whole-block gaps), converging to identical
// costs at one record per block, where every block can be preserved.

#include <iostream>

#include "bench/harness/experiment.h"

namespace lsmssd::bench {
namespace {

void Main() {
  const double scale = ScaleFromEnv();
  Options base = BenchOptions();
  PrintHeader("Figure 9",
              "steady-state write cost vs payload size (Uniform 50/50); "
              "paper sweeps 25..4000 B on 4 KB blocks, we sweep the same "
              "records-per-block range on 1 KiB blocks",
              base);

  const double dataset_mb = 1.5 * scale;
  const double window_mb = 2.0 * scale;
  // Payload bytes giving B = 51, 22, 9, 4, 1 with 1 KiB blocks (the
  // paper's 25..4000-byte sweep gives B = 136 .. 1 on 4 KiB blocks).
  const std::vector<size_t> payloads = {15, 40, 105, 250, 1015};

  std::vector<std::string> columns = {"payload_bytes", "records_per_block"};
  for (const auto& p : SevenPolicies()) columns.push_back(p.name);
  TablePrinter table(columns);

  for (size_t payload : payloads) {
    Options options = base;
    options.payload_size = payload;
    std::vector<std::string> row = {
        internal_table::FormatCell(payload),
        internal_table::FormatCell(options.records_per_block())};
    for (const auto& policy : SevenPolicies()) {
      WorkloadSpec spec;
      spec.kind = WorkloadKind::kUniform;
      Experiment exp(options, policy, spec);
      Status st = exp.PrepareSteadyState(dataset_mb);
      LSMSSD_CHECK(st.ok()) << st.ToString();
      auto metrics = exp.Measure(window_mb);
      LSMSSD_CHECK(metrics.ok());
      row.push_back(internal_table::FormatCell(metrics->BlocksPerMb()));
    }
    table.AddRow(row);
    std::cerr << "  [fig09] payload=" << payload << " done\n";
  }
  table.Print(std::cout, "fig09");
  std::cout << "\npaper shape check: at B=1 the four preserving policies "
               "converge; the \"-P\" columns stay roughly flat.\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
