// Figure 7: request processing time per 1 MB of requests under Normal,
// same setup as Figure 6b, running against a file-backed block device.
//
// Paper shape to reproduce: the policy ranking by wall-clock time is
// largely consistent with the ranking by write counts, with Mixed the
// overall winner (occasionally edged out by ChooseBest); absolute numbers
// are machine-dependent.

#include <iostream>

#include "bench/harness/experiment.h"
#include "src/storage/file_block_device.h"

namespace lsmssd::bench {
namespace {

struct TimedResult {
  double seconds_per_mb = 0;
  double blocks_per_mb = 0;
};

TimedResult RunOne(const Options& base_options, const PolicySpec& policy,
                   double dataset_mb, double window_mb, uint64_t seed) {
  Options options = base_options;
  options.preserve_blocks = policy.preserve;

  FileBlockDevice::FileOptions fopts;
  fopts.block_size = options.block_size;
  auto device_or = FileBlockDevice::Open(
      "/tmp/lsmssd_fig07_" + policy.name + ".dat", fopts);
  LSMSSD_CHECK(device_or.ok()) << device_or.status().ToString();
  auto device = std::move(device_or).value();

  auto tree_or = LsmTree::Open(options, device.get(),
                               CreatePolicy(policy.kind));
  LSMSSD_CHECK(tree_or.ok());
  auto tree = std::move(tree_or).value();

  WorkloadSpec spec;
  spec.kind = WorkloadKind::kNormal;
  spec.seed = seed;
  auto workload = MakeWorkload(spec);
  WorkloadDriver driver(tree.get(), workload.get());
  LSMSSD_CHECK(driver
                   .GrowTo(RecordsForMb(options, dataset_mb) *
                           options.record_size())
                   .ok());
  LSMSSD_CHECK(driver.ReachSteadyState(0.5).ok());
  if (policy.kind == PolicyKind::kMixed) {
    auto params = MixedLearner::Learn(tree.get(), driver.RequestFn());
    LSMSSD_CHECK(params.ok());
    tree->set_policy(std::make_unique<MixedPolicy>(params.value()));
    LSMSSD_CHECK(driver.ReachSteadyState(0.5).ok());
  }

  auto metrics = driver.MeasureWindow(static_cast<uint64_t>(
      RecordsForMb(options, window_mb) * options.record_size()));
  LSMSSD_CHECK(metrics.ok());
  return {metrics->SecondsPerMb(), metrics->BlocksPerMb()};
}

void Main() {
  const double scale = ScaleFromEnv();
  const Options options = BenchOptions();
  PrintHeader("Figure 7",
              "request processing time per 1 MB of requests, Normal 50/50, "
              "file-backed device",
              options);

  std::vector<double> sizes_mb;
  for (double s : {0.5, 1.0, 2.0, 3.5}) sizes_mb.push_back(s * scale);
  const double window_mb = 2.0 * scale;

  std::vector<std::string> columns = {"dataset_mb"};
  for (const auto& p : SevenPolicies()) columns.push_back(p.name);
  TablePrinter time_table(columns);
  TablePrinter write_table(columns);

  for (double size_mb : sizes_mb) {
    std::vector<std::string> trow = {internal_table::FormatCell(size_mb)};
    std::vector<std::string> wrow = trow;
    for (const auto& policy : SevenPolicies()) {
      const TimedResult r = RunOne(options, policy, size_mb, window_mb, 5);
      trow.push_back(internal_table::FormatCell(r.seconds_per_mb));
      wrow.push_back(internal_table::FormatCell(r.blocks_per_mb));
    }
    time_table.AddRow(trow);
    write_table.AddRow(wrow);
    std::cerr << "  [fig07] " << size_mb << " MB done\n";
  }

  std::cout << "--- seconds per 1 MB of requests ---\n";
  time_table.Print(std::cout, "fig07-time");
  std::cout << "\n--- blocks written per 1 MB (ranking cross-check) ---\n";
  write_table.Print(std::cout, "fig07-writes");
  std::cout << "\npaper shape check: time ranking tracks the write "
               "ranking; Mixed/ChooseBest fastest, Full-P slowest.\n";
}

}  // namespace
}  // namespace lsmssd::bench

int main() { lsmssd::bench::Main(); }
