# Empty compiler generated dependencies file for order_ledger_tpc.
# This may be replaced when dependencies are built.
