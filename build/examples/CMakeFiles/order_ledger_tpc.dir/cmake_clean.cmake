file(REMOVE_RECURSE
  "CMakeFiles/order_ledger_tpc.dir/order_ledger_tpc.cpp.o"
  "CMakeFiles/order_ledger_tpc.dir/order_ledger_tpc.cpp.o.d"
  "order_ledger_tpc"
  "order_ledger_tpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_ledger_tpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
