file(REMOVE_RECURSE
  "CMakeFiles/policy_autotune.dir/policy_autotune.cpp.o"
  "CMakeFiles/policy_autotune.dir/policy_autotune.cpp.o.d"
  "policy_autotune"
  "policy_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
