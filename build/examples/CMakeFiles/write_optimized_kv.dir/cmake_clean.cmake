file(REMOVE_RECURSE
  "CMakeFiles/write_optimized_kv.dir/write_optimized_kv.cpp.o"
  "CMakeFiles/write_optimized_kv.dir/write_optimized_kv.cpp.o.d"
  "write_optimized_kv"
  "write_optimized_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_optimized_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
