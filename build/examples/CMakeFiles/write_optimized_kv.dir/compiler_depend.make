# Empty compiler generated dependencies file for write_optimized_kv.
# This may be replaced when dependencies are built.
