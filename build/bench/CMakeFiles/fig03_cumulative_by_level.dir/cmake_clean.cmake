file(REMOVE_RECURSE
  "CMakeFiles/fig03_cumulative_by_level.dir/fig03_cumulative_by_level.cc.o"
  "CMakeFiles/fig03_cumulative_by_level.dir/fig03_cumulative_by_level.cc.o.d"
  "fig03_cumulative_by_level"
  "fig03_cumulative_by_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_cumulative_by_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
