# Empty compiler generated dependencies file for fig03_cumulative_by_level.
# This may be replaced when dependencies are built.
