# Empty dependencies file for ext_query_overhead.
# This may be replaced when dependencies are built.
