file(REMOVE_RECURSE
  "CMakeFiles/ext_query_overhead.dir/ext_query_overhead.cc.o"
  "CMakeFiles/ext_query_overhead.dir/ext_query_overhead.cc.o.d"
  "ext_query_overhead"
  "ext_query_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_query_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
