# Empty dependencies file for fig01_key_distribution.
# This may be replaced when dependencies are built.
