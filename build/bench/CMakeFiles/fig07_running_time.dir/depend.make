# Empty dependencies file for fig07_running_time.
# This may be replaced when dependencies are built.
