file(REMOVE_RECURSE
  "CMakeFiles/fig04_testmixed_cumulative.dir/fig04_testmixed_cumulative.cc.o"
  "CMakeFiles/fig04_testmixed_cumulative.dir/fig04_testmixed_cumulative.cc.o.d"
  "fig04_testmixed_cumulative"
  "fig04_testmixed_cumulative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_testmixed_cumulative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
