# Empty dependencies file for fig04_testmixed_cumulative.
# This may be replaced when dependencies are built.
