# Empty dependencies file for fig06_steady_state.
# This may be replaced when dependencies are built.
