file(REMOVE_RECURSE
  "CMakeFiles/fig06_steady_state.dir/fig06_steady_state.cc.o"
  "CMakeFiles/fig06_steady_state.dir/fig06_steady_state.cc.o.d"
  "fig06_steady_state"
  "fig06_steady_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_steady_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
