file(REMOVE_RECURSE
  "CMakeFiles/abl_partitioned.dir/abl_partitioned.cc.o"
  "CMakeFiles/abl_partitioned.dir/abl_partitioned.cc.o.d"
  "abl_partitioned"
  "abl_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
