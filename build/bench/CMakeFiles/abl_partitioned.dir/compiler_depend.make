# Empty compiler generated dependencies file for abl_partitioned.
# This may be replaced when dependencies are built.
