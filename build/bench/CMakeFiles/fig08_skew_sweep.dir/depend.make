# Empty dependencies file for fig08_skew_sweep.
# This may be replaced when dependencies are built.
