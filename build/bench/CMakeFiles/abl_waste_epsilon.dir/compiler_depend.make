# Empty compiler generated dependencies file for abl_waste_epsilon.
# This may be replaced when dependencies are built.
