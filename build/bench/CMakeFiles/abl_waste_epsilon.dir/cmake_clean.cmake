file(REMOVE_RECURSE
  "CMakeFiles/abl_waste_epsilon.dir/abl_waste_epsilon.cc.o"
  "CMakeFiles/abl_waste_epsilon.dir/abl_waste_epsilon.cc.o.d"
  "abl_waste_epsilon"
  "abl_waste_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_waste_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
