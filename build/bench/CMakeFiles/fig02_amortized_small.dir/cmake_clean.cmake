file(REMOVE_RECURSE
  "CMakeFiles/fig02_amortized_small.dir/fig02_amortized_small.cc.o"
  "CMakeFiles/fig02_amortized_small.dir/fig02_amortized_small.cc.o.d"
  "fig02_amortized_small"
  "fig02_amortized_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_amortized_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
