# Empty dependencies file for fig02_amortized_small.
# This may be replaced when dependencies are built.
