file(REMOVE_RECURSE
  "CMakeFiles/abl_level_growth.dir/abl_level_growth.cc.o"
  "CMakeFiles/abl_level_growth.dir/abl_level_growth.cc.o.d"
  "abl_level_growth"
  "abl_level_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_level_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
