# Empty dependencies file for abl_level_growth.
# This may be replaced when dependencies are built.
