# Empty compiler generated dependencies file for fig09_payload_sweep.
# This may be replaced when dependencies are built.
