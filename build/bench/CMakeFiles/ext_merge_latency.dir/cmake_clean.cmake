file(REMOVE_RECURSE
  "CMakeFiles/ext_merge_latency.dir/ext_merge_latency.cc.o"
  "CMakeFiles/ext_merge_latency.dir/ext_merge_latency.cc.o.d"
  "ext_merge_latency"
  "ext_merge_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_merge_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
