# Empty dependencies file for ext_merge_latency.
# This may be replaced when dependencies are built.
