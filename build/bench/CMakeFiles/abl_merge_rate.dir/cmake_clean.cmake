file(REMOVE_RECURSE
  "CMakeFiles/abl_merge_rate.dir/abl_merge_rate.cc.o"
  "CMakeFiles/abl_merge_rate.dir/abl_merge_rate.cc.o.d"
  "abl_merge_rate"
  "abl_merge_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_merge_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
