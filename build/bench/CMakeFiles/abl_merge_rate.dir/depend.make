# Empty dependencies file for abl_merge_rate.
# This may be replaced when dependencies are built.
