file(REMOVE_RECURSE
  "CMakeFiles/fig05_threshold_curve.dir/fig05_threshold_curve.cc.o"
  "CMakeFiles/fig05_threshold_curve.dir/fig05_threshold_curve.cc.o.d"
  "fig05_threshold_curve"
  "fig05_threshold_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_threshold_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
