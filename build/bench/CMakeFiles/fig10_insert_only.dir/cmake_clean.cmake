file(REMOVE_RECURSE
  "CMakeFiles/fig10_insert_only.dir/fig10_insert_only.cc.o"
  "CMakeFiles/fig10_insert_only.dir/fig10_insert_only.cc.o.d"
  "fig10_insert_only"
  "fig10_insert_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_insert_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
