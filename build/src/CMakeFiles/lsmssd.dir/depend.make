# Empty dependencies file for lsmssd.
# This may be replaced when dependencies are built.
