
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/key_codec.cc" "src/CMakeFiles/lsmssd.dir/format/key_codec.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/format/key_codec.cc.o.d"
  "/root/repo/src/format/record.cc" "src/CMakeFiles/lsmssd.dir/format/record.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/format/record.cc.o.d"
  "/root/repo/src/format/record_block.cc" "src/CMakeFiles/lsmssd.dir/format/record_block.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/format/record_block.cc.o.d"
  "/root/repo/src/lsm/level.cc" "src/CMakeFiles/lsmssd.dir/lsm/level.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/lsm/level.cc.o.d"
  "/root/repo/src/lsm/lsm_tree.cc" "src/CMakeFiles/lsmssd.dir/lsm/lsm_tree.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/lsm/lsm_tree.cc.o.d"
  "/root/repo/src/lsm/manifest.cc" "src/CMakeFiles/lsmssd.dir/lsm/manifest.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/lsm/manifest.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/CMakeFiles/lsmssd.dir/lsm/memtable.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/lsm/memtable.cc.o.d"
  "/root/repo/src/lsm/merge.cc" "src/CMakeFiles/lsmssd.dir/lsm/merge.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/lsm/merge.cc.o.d"
  "/root/repo/src/lsm/stats.cc" "src/CMakeFiles/lsmssd.dir/lsm/stats.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/lsm/stats.cc.o.d"
  "/root/repo/src/lsm/tree_iterator.cc" "src/CMakeFiles/lsmssd.dir/lsm/tree_iterator.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/lsm/tree_iterator.cc.o.d"
  "/root/repo/src/lsm/wal.cc" "src/CMakeFiles/lsmssd.dir/lsm/wal.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/lsm/wal.cc.o.d"
  "/root/repo/src/lsm/waste.cc" "src/CMakeFiles/lsmssd.dir/lsm/waste.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/lsm/waste.cc.o.d"
  "/root/repo/src/policy/choose_best_policy.cc" "src/CMakeFiles/lsmssd.dir/policy/choose_best_policy.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/policy/choose_best_policy.cc.o.d"
  "/root/repo/src/policy/full_policy.cc" "src/CMakeFiles/lsmssd.dir/policy/full_policy.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/policy/full_policy.cc.o.d"
  "/root/repo/src/policy/mixed_learner.cc" "src/CMakeFiles/lsmssd.dir/policy/mixed_learner.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/policy/mixed_learner.cc.o.d"
  "/root/repo/src/policy/mixed_policy.cc" "src/CMakeFiles/lsmssd.dir/policy/mixed_policy.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/policy/mixed_policy.cc.o.d"
  "/root/repo/src/policy/partitioned_policy.cc" "src/CMakeFiles/lsmssd.dir/policy/partitioned_policy.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/policy/partitioned_policy.cc.o.d"
  "/root/repo/src/policy/policy_factory.cc" "src/CMakeFiles/lsmssd.dir/policy/policy_factory.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/policy/policy_factory.cc.o.d"
  "/root/repo/src/policy/rr_policy.cc" "src/CMakeFiles/lsmssd.dir/policy/rr_policy.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/policy/rr_policy.cc.o.d"
  "/root/repo/src/storage/file_block_device.cc" "src/CMakeFiles/lsmssd.dir/storage/file_block_device.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/storage/file_block_device.cc.o.d"
  "/root/repo/src/storage/io_stats.cc" "src/CMakeFiles/lsmssd.dir/storage/io_stats.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/storage/io_stats.cc.o.d"
  "/root/repo/src/storage/lru_cache.cc" "src/CMakeFiles/lsmssd.dir/storage/lru_cache.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/storage/lru_cache.cc.o.d"
  "/root/repo/src/storage/mem_block_device.cc" "src/CMakeFiles/lsmssd.dir/storage/mem_block_device.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/storage/mem_block_device.cc.o.d"
  "/root/repo/src/util/bloom.cc" "src/CMakeFiles/lsmssd.dir/util/bloom.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/util/bloom.cc.o.d"
  "/root/repo/src/util/golden_section.cc" "src/CMakeFiles/lsmssd.dir/util/golden_section.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/util/golden_section.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/lsmssd.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/lsmssd.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/lsmssd.dir/util/random.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/util/random.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/lsmssd.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/util/table_printer.cc.o.d"
  "/root/repo/src/workload/driver.cc" "src/CMakeFiles/lsmssd.dir/workload/driver.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/workload/driver.cc.o.d"
  "/root/repo/src/workload/normal_workload.cc" "src/CMakeFiles/lsmssd.dir/workload/normal_workload.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/workload/normal_workload.cc.o.d"
  "/root/repo/src/workload/tpc_workload.cc" "src/CMakeFiles/lsmssd.dir/workload/tpc_workload.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/workload/tpc_workload.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/lsmssd.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/uniform_workload.cc" "src/CMakeFiles/lsmssd.dir/workload/uniform_workload.cc.o" "gcc" "src/CMakeFiles/lsmssd.dir/workload/uniform_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
