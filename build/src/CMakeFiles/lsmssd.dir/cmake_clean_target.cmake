file(REMOVE_RECURSE
  "liblsmssd.a"
)
