file(REMOVE_RECURSE
  "CMakeFiles/lsmssd_cli.dir/lsmssd_cli.cc.o"
  "CMakeFiles/lsmssd_cli.dir/lsmssd_cli.cc.o.d"
  "lsmssd_cli"
  "lsmssd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsmssd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
