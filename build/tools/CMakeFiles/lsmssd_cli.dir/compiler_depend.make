# Empty compiler generated dependencies file for lsmssd_cli.
# This may be replaced when dependencies are built.
