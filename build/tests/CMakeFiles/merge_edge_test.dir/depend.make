# Empty dependencies file for merge_edge_test.
# This may be replaced when dependencies are built.
