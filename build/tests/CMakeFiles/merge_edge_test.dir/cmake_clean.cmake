file(REMOVE_RECURSE
  "CMakeFiles/merge_edge_test.dir/lsm/merge_edge_test.cc.o"
  "CMakeFiles/merge_edge_test.dir/lsm/merge_edge_test.cc.o.d"
  "merge_edge_test"
  "merge_edge_test.pdb"
  "merge_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
