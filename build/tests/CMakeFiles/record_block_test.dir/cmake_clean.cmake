file(REMOVE_RECURSE
  "CMakeFiles/record_block_test.dir/format/record_block_test.cc.o"
  "CMakeFiles/record_block_test.dir/format/record_block_test.cc.o.d"
  "record_block_test"
  "record_block_test.pdb"
  "record_block_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
