# Empty dependencies file for record_block_test.
# This may be replaced when dependencies are built.
