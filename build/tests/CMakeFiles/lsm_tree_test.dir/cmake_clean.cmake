file(REMOVE_RECURSE
  "CMakeFiles/lsm_tree_test.dir/lsm/lsm_tree_test.cc.o"
  "CMakeFiles/lsm_tree_test.dir/lsm/lsm_tree_test.cc.o.d"
  "lsm_tree_test"
  "lsm_tree_test.pdb"
  "lsm_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
