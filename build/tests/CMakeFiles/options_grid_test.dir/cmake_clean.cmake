file(REMOVE_RECURSE
  "CMakeFiles/options_grid_test.dir/integration/options_grid_test.cc.o"
  "CMakeFiles/options_grid_test.dir/integration/options_grid_test.cc.o.d"
  "options_grid_test"
  "options_grid_test.pdb"
  "options_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/options_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
