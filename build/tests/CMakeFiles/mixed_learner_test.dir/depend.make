# Empty dependencies file for mixed_learner_test.
# This may be replaced when dependencies are built.
