file(REMOVE_RECURSE
  "CMakeFiles/mixed_learner_test.dir/policy/mixed_learner_test.cc.o"
  "CMakeFiles/mixed_learner_test.dir/policy/mixed_learner_test.cc.o.d"
  "mixed_learner_test"
  "mixed_learner_test.pdb"
  "mixed_learner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
