file(REMOVE_RECURSE
  "CMakeFiles/partitioned_policy_test.dir/policy/partitioned_policy_test.cc.o"
  "CMakeFiles/partitioned_policy_test.dir/policy/partitioned_policy_test.cc.o.d"
  "partitioned_policy_test"
  "partitioned_policy_test.pdb"
  "partitioned_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
