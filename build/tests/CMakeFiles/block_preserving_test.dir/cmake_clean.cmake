file(REMOVE_RECURSE
  "CMakeFiles/block_preserving_test.dir/integration/block_preserving_test.cc.o"
  "CMakeFiles/block_preserving_test.dir/integration/block_preserving_test.cc.o.d"
  "block_preserving_test"
  "block_preserving_test.pdb"
  "block_preserving_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_preserving_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
