file(REMOVE_RECURSE
  "CMakeFiles/golden_section_test.dir/util/golden_section_test.cc.o"
  "CMakeFiles/golden_section_test.dir/util/golden_section_test.cc.o.d"
  "golden_section_test"
  "golden_section_test.pdb"
  "golden_section_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_section_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
