# Empty compiler generated dependencies file for golden_section_test.
# This may be replaced when dependencies are built.
