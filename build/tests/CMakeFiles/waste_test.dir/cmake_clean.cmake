file(REMOVE_RECURSE
  "CMakeFiles/waste_test.dir/lsm/waste_test.cc.o"
  "CMakeFiles/waste_test.dir/lsm/waste_test.cc.o.d"
  "waste_test"
  "waste_test.pdb"
  "waste_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waste_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
