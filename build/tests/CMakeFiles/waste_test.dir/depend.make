# Empty dependencies file for waste_test.
# This may be replaced when dependencies are built.
