file(REMOVE_RECURSE
  "CMakeFiles/policy_bounds_test.dir/policy/policy_bounds_test.cc.o"
  "CMakeFiles/policy_bounds_test.dir/policy/policy_bounds_test.cc.o.d"
  "policy_bounds_test"
  "policy_bounds_test.pdb"
  "policy_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
