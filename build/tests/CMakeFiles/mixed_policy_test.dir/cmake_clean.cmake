file(REMOVE_RECURSE
  "CMakeFiles/mixed_policy_test.dir/policy/mixed_policy_test.cc.o"
  "CMakeFiles/mixed_policy_test.dir/policy/mixed_policy_test.cc.o.d"
  "mixed_policy_test"
  "mixed_policy_test.pdb"
  "mixed_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
