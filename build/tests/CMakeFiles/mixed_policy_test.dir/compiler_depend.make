# Empty compiler generated dependencies file for mixed_policy_test.
# This may be replaced when dependencies are built.
