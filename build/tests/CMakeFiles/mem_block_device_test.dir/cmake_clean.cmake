file(REMOVE_RECURSE
  "CMakeFiles/mem_block_device_test.dir/storage/mem_block_device_test.cc.o"
  "CMakeFiles/mem_block_device_test.dir/storage/mem_block_device_test.cc.o.d"
  "mem_block_device_test"
  "mem_block_device_test.pdb"
  "mem_block_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_block_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
