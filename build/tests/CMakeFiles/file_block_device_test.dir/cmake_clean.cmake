file(REMOVE_RECURSE
  "CMakeFiles/file_block_device_test.dir/storage/file_block_device_test.cc.o"
  "CMakeFiles/file_block_device_test.dir/storage/file_block_device_test.cc.o.d"
  "file_block_device_test"
  "file_block_device_test.pdb"
  "file_block_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_block_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
