# Empty dependencies file for file_block_device_test.
# This may be replaced when dependencies are built.
