file(REMOVE_RECURSE
  "CMakeFiles/choose_best_test.dir/policy/choose_best_test.cc.o"
  "CMakeFiles/choose_best_test.dir/policy/choose_best_test.cc.o.d"
  "choose_best_test"
  "choose_best_test.pdb"
  "choose_best_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choose_best_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
