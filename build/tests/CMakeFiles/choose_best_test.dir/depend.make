# Empty dependencies file for choose_best_test.
# This may be replaced when dependencies are built.
