// Scenario: a write-heavy session store (the paper's motivating workload
// class). Sessions are created and expired constantly; the dataset size
// stays roughly steady while writes hammer the index. We run the same
// churn against two configurations — classic LSM (Full merges, no block
// preservation, i.e. the paper's "Full-P") and this library's ChooseBest
// with block-preserving merges — and report the SSD write savings, which
// translate directly into device lifetime (Section I).
//
//   ./build/examples/write_optimized_kv [num_requests]

#include <cstdlib>
#include <iostream>

#include "src/lsm/lsm_tree.h"
#include "src/policy/policy_factory.h"
#include "src/storage/mem_block_device.h"
#include "src/util/random.h"
#include "src/workload/driver.h"
#include "src/workload/uniform_workload.h"

using namespace lsmssd;

namespace {

struct RunStats {
  uint64_t device_writes = 0;
  uint64_t device_reads = 0;
  uint64_t preserved = 0;
  size_t levels = 0;
};

RunStats RunChurn(PolicyKind kind, bool preserve, uint64_t requests) {
  Options options;
  options.payload_size = 100;            // ~ a serialized session blob.
  options.level0_capacity_blocks = 64;   // 256 KB of in-memory buffer.
  options.preserve_blocks = preserve;
  options.annihilate_delete_put = true;  // Session ids are never reused.

  MemBlockDevice device(options.block_size);
  auto tree = LsmTree::Open(options, &device, CreatePolicy(kind));
  LSMSSD_CHECK(tree.ok()) << tree.status().ToString();

  // Uniformly random session ids; expirations pick random live sessions.
  UniformWorkload::Params wp;
  wp.key_max = 4'000'000'000;
  wp.seed = 2017;
  UniformWorkload workload(wp);
  WorkloadDriver driver(tree.value().get(), &workload);

  // Warm up to a steady population of ~40k sessions, then churn.
  LSMSSD_CHECK(
      driver.GrowTo(uint64_t{40'000} * options.record_size()).ok());
  workload.set_insert_ratio(0.5);
  LSMSSD_CHECK(driver.Run(requests).ok());
  LSMSSD_CHECK(tree.value()->CheckInvariants().ok());

  RunStats stats;
  stats.device_writes = device.stats().block_writes();
  stats.device_reads = device.stats().block_reads();
  stats.levels = tree.value()->num_levels();
  for (size_t i = 1; i < tree.value()->num_levels(); ++i) {
    stats.preserved += tree.value()->stats().blocks_preserved_into[i];
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : 200'000;

  std::cout << "session-store churn: 40k live sessions, " << requests
            << " create/expire requests\n\n";

  const RunStats classic = RunChurn(PolicyKind::kFull, false, requests);
  std::cout << "classic LSM   (Full-P)                : "
            << classic.device_writes << " block writes, "
            << classic.levels << " levels\n";

  const RunStats tuned = RunChurn(PolicyKind::kChooseBest, true, requests);
  std::cout << "this library  (ChooseBest + preserve) : "
            << tuned.device_writes << " block writes, " << tuned.preserved
            << " blocks reused, " << tuned.levels << " levels\n";

  const double saved =
      100.0 * (1.0 - static_cast<double>(tuned.device_writes) /
                         static_cast<double>(classic.device_writes));
  std::cout << "\nSSD writes saved: " << saved
            << "% — fewer writes means proportionally less flash wear.\n";
  return 0;
}
