// Scenario: auto-tuning the Mixed merge policy for a live workload
// (Section IV-C). We bring an index to its steady state under ChooseBest,
// let MixedLearner find the thresholds tau_i and the bottom decision beta
// by replaying the workload mix, then compare steady-state write costs
// before and after switching to the learned Mixed policy.
//
//   ./build/examples/policy_autotune

#include <iostream>

#include "src/lsm/lsm_tree.h"
#include "src/policy/mixed_learner.h"
#include "src/policy/policy_factory.h"
#include "src/storage/mem_block_device.h"
#include "src/workload/driver.h"
#include "src/workload/uniform_workload.h"

using namespace lsmssd;

namespace {

Options TunedOptions() {
  Options options;
  options.block_size = 1024;
  options.payload_size = 40;
  options.level0_capacity_blocks = 25;
  options.annihilate_delete_put = true;
  return options;
}

double MeasureBlocksPerMb(WorkloadDriver* driver, const Options& options) {
  auto metrics = driver->MeasureWindow(uint64_t{2} * 1024 * 1024 /
                                           options.record_size() *
                                           options.record_size());
  LSMSSD_CHECK(metrics.ok());
  return metrics->BlocksPerMb();
}

}  // namespace

int main() {
  const Options options = TunedOptions();
  MemBlockDevice device(options.block_size);
  auto tree_or =
      LsmTree::Open(options, &device, CreatePolicy(PolicyKind::kChooseBest));
  LSMSSD_CHECK(tree_or.ok());
  LsmTree& tree = *tree_or.value();

  UniformWorkload::Params wp;
  wp.seed = 7;
  UniformWorkload workload(wp);
  WorkloadDriver driver(&tree, &workload);

  // ~0.75 MB: the bottom level is well under capacity, the regime where
  // learning matters (full merges into a small bottom level pay off).
  std::cout << "growing to ~0.75 MB and stabilizing under ChooseBest...\n";
  LSMSSD_CHECK(driver.GrowTo(uint64_t{17'000} * options.record_size()).ok());
  LSMSSD_CHECK(driver.ReachSteadyState(0.5).ok());
  const double before = MeasureBlocksPerMb(&driver, options);
  std::cout << "steady-state cost under ChooseBest: " << before
            << " blocks written / MB of requests\n\n";

  std::cout << "learning Mixed parameters (top-down per level, "
               "golden-section over tau)...\n";
  MixedLearner::Config config;
  config.use_golden_section = true;
  auto params_or = MixedLearner::Learn(&tree, driver.RequestFn(), config);
  if (!params_or.ok()) {
    std::cerr << "learning failed: " << params_or.status().ToString()
              << "\n";
    return 1;
  }
  const MixedParams params = params_or.value();
  std::cout << "learned parameters: " << params.ToString() << "\n\n";

  tree.set_policy(std::make_unique<MixedPolicy>(params));
  LSMSSD_CHECK(driver.ReachSteadyState(0.5).ok());
  const double after = MeasureBlocksPerMb(&driver, options);
  std::cout << "steady-state cost under learned Mixed: " << after
            << " blocks written / MB of requests\n";
  std::cout << "improvement vs ChooseBest: "
            << 100.0 * (1.0 - after / before) << "%\n";
  return 0;
}
