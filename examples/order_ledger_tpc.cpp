// Scenario: an order ledger shaped like TPC-C NEW_ORDER (the paper's TPC
// workload). Orders stream in across warehouses/districts; deliveries
// purge the ten oldest orders of a district. Because order ids are
// sequential within a district, the key space is a union of dense,
// growing runs — exactly the pattern where partial merges shine. The
// example also shows range scans: listing a district's open orders is a
// contiguous key-range scan.
//
//   ./build/examples/order_ledger_tpc [num_transactions]

#include <cstdlib>
#include <iostream>

#include "src/lsm/lsm_tree.h"
#include "src/policy/policy_factory.h"
#include "src/storage/mem_block_device.h"
#include "src/workload/driver.h"
#include "src/workload/tpc_workload.h"

using namespace lsmssd;

int main(int argc, char** argv) {
  const uint64_t requests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150'000;

  Options options;
  options.payload_size = 64;  // order line summary
  options.level0_capacity_blocks = 64;
  options.annihilate_delete_put = true;  // Order ids are never reused.

  MemBlockDevice device(options.block_size);
  auto tree_or =
      LsmTree::Open(options, &device, CreatePolicy(PolicyKind::kChooseBest));
  LSMSSD_CHECK(tree_or.ok());
  LsmTree& tree = *tree_or.value();

  TpcWorkload::Params params;
  params.warehouses = 8;
  params.districts_per_warehouse = 10;
  params.insert_ratio = 0.55;  // Intake slightly outpaces delivery.
  params.seed = 42;
  TpcWorkload workload(params);
  WorkloadDriver driver(&tree, &workload);

  std::cout << "ingesting " << requests << " order/delivery requests over "
            << params.warehouses << " warehouses x "
            << params.districts_per_warehouse << " districts...\n";
  if (Status st = driver.Run(requests); !st.ok()) {
    std::cerr << "ingest failed: " << st.ToString() << "\n";
    return 1;
  }

  std::cout << "live orders: " << workload.indexed_keys() << " across "
            << tree.num_levels() << " levels; device writes: "
            << device.stats().block_writes() << "\n\n";

  // List the open orders of warehouse 3, district 7 — a contiguous key
  // range thanks to the bit-packed (warehouse, district, order) keys.
  const Key lo = workload.MakeKey(3, 7, 0);
  const Key hi = workload.MakeKey(3, 8, 0) - 1;
  std::vector<std::pair<Key, std::string>> open_orders;
  if (Status st = tree.Scan(lo, hi, &open_orders); !st.ok()) {
    std::cerr << "scan failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "warehouse 3 / district 7 has " << open_orders.size()
            << " open orders";
  if (!open_orders.empty()) {
    std::cout << " (oldest id " << (open_orders.front().first & 0xffffff)
              << ", newest id " << (open_orders.back().first & 0xffffff)
              << ")";
  }
  std::cout << "\n\nper-level structure:\n";
  for (size_t i = 1; i < tree.num_levels(); ++i) {
    std::cout << "  L" << i << ": " << tree.level(i).size_blocks()
              << " blocks, " << tree.level(i).record_count() << " records, "
              << "waste " << tree.level(i).waste_factor() << "\n";
  }
  return 0;
}
