// Scenario: durability and restart. Runs the full recovery protocol on a
// persistent file-backed device:
//
//   session 1: open device -> write -> checkpoint (manifest) -> keep
//              writing with a WAL -> "crash" (process exit)
//   session 2: reopen device -> restore manifest -> replay WAL -> verify
//
//   ./build/examples/durable_restart [workdir]

#include <cstdio>
#include <iostream>
#include <vector>

#include "src/lsm/lsm_tree.h"
#include "src/lsm/manifest.h"
#include "src/lsm/wal.h"
#include "src/policy/policy_factory.h"
#include "src/storage/file_block_device.h"
#include "src/workload/driver.h"

using namespace lsmssd;

namespace {

Options DemoOptions() {
  Options options;
  options.payload_size = 64;
  options.level0_capacity_blocks = 32;
  options.bloom_bits_per_key = 10;
  return options;
}

int Session1(const std::string& device_path, const std::string& manifest_path,
             const std::string& wal_path) {
  const Options options = DemoOptions();
  FileBlockDevice::FileOptions fopts;
  fopts.block_size = options.block_size;
  fopts.remove_on_close = false;  // The device must survive the "crash".
  auto device = FileBlockDevice::Open(device_path, fopts);
  LSMSSD_CHECK(device.ok()) << device.status().ToString();
  auto tree_or = LsmTree::Open(options, device.value().get(),
                               CreatePolicy(PolicyKind::kChooseBest));
  LSMSSD_CHECK(tree_or.ok());
  LsmTree& tree = *tree_or.value();

  // Checkpointed history: 20k orders.
  for (Key k = 0; k < 20'000; ++k) {
    LSMSSD_CHECK(tree.Put(k, MakePayload(options, k)).ok());
  }
  LSMSSD_CHECK(SaveManifestToFile(tree, manifest_path).ok());
  std::cout << "session 1: checkpointed " << tree.TotalRecords()
            << " records across " << tree.num_levels() << " levels\n";

  // Post-checkpoint writes go through the WAL (and the tree).
  auto wal = WalWriter::Open(wal_path);
  LSMSSD_CHECK(wal.ok());
  for (Key k = 20'000; k < 20'500; ++k) {
    const Record r = Record::Put(k, MakePayload(options, k));
    LSMSSD_CHECK(wal.value()->Append(r).ok());
    LSMSSD_CHECK(tree.Put(r.key, r.payload).ok());
  }
  for (Key k = 0; k < 100; ++k) {
    LSMSSD_CHECK(wal.value()->Append(Record::Tombstone(k * 7)).ok());
    LSMSSD_CHECK(tree.Delete(k * 7).ok());
  }
  LSMSSD_CHECK(wal.value()->Sync().ok());
  std::cout << "session 1: logged 600 post-checkpoint requests, then "
               "\"crashed\" without checkpointing again\n";
  // NOTE: the post-checkpoint writes here all stay in the in-memory L0
  // (no merge fires), so no checkpoint-referenced block is freed or its
  // slot reused before the crash. A production system must make that a
  // guarantee rather than an accident: pin manifest-referenced blocks
  // (defer slot reuse) until the next checkpoint, and garbage-collect
  // unreferenced slots on recovery.
  return 0;
}

int Session2(const std::string& device_path, const std::string& manifest_path,
             const std::string& wal_path) {
  auto manifest = LoadManifestFromFile(manifest_path);
  LSMSSD_CHECK(manifest.ok()) << manifest.status().ToString();

  FileBlockDevice::FileOptions fopts;
  fopts.block_size = manifest->options.block_size;
  fopts.remove_on_close = true;  // Clean up after the demo.
  fopts.truncate = false;
  auto device = FileBlockDevice::Open(device_path, fopts);
  LSMSSD_CHECK(device.ok());

  std::vector<BlockId> live;
  for (const auto& level : manifest->levels) {
    for (const auto& leaf : level) live.push_back(leaf.block);
  }
  LSMSSD_CHECK(device.value()->RestoreLive(live).ok());

  auto tree_or = LsmTree::Restore(manifest.value(), device.value().get(),
                                  CreatePolicy(PolicyKind::kChooseBest));
  LSMSSD_CHECK(tree_or.ok()) << tree_or.status().ToString();
  LsmTree& tree = *tree_or.value();
  std::cout << "session 2: restored " << tree.TotalRecords()
            << " records from the manifest\n";

  auto replay = WalReader::ReadAll(wal_path);
  LSMSSD_CHECK(replay.ok());
  for (const Record& r : replay.value()) {
    if (r.is_tombstone()) {
      LSMSSD_CHECK(tree.Delete(r.key).ok());
    } else {
      LSMSSD_CHECK(tree.Put(r.key, r.payload).ok());
    }
  }
  std::cout << "session 2: replayed " << replay->size() << " WAL entries\n";

  // Verify a few invariants of the recovered state.
  LSMSSD_CHECK(tree.CheckInvariants().ok());
  int errors = 0;
  errors += !tree.Get(20'499).ok();                    // Post-checkpoint put.
  errors += !tree.Get(0).status().IsNotFound();        // Deleted (0*7).
  errors += !tree.Get(20'000 - 1).ok();                // Checkpointed put.
  std::cout << (errors == 0 ? "recovery verified: all probes correct\n"
                            : "RECOVERY MISMATCH\n");
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workdir = argc > 1 ? argv[1] : "/tmp";
  const std::string device_path = workdir + "/lsmssd_demo.dev";
  const std::string manifest_path = workdir + "/lsmssd_demo.manifest";
  const std::string wal_path = workdir + "/lsmssd_demo.wal";

  const int rc1 = Session1(device_path, manifest_path, wal_path);
  if (rc1 != 0) return rc1;
  const int rc2 = Session2(device_path, manifest_path, wal_path);
  std::remove(manifest_path.c_str());
  std::remove(wal_path.c_str());
  return rc2;
}
