// Scenario: durability and restart through the Db facade.
//
//   session 1: Db::Open -> write -> Checkpoint() -> keep writing (the
//              tail lives in the WAL) -> "crash" (process exit, no
//              second checkpoint)
//   session 2: Db::Open on the same directory auto-recovers: manifest ->
//              LsmTree::Restore -> WAL tail replay -> verify probes
//
//   ./build/examples/durable_restart [workdir]
//
// -------------------------------------------------------------------
// Under the hood, Db runs the raw-primitives protocol that this example
// used to spell out by hand:
//
//   // session 1 — write side:
//   FileBlockDevice::FileOptions fopts;
//   fopts.block_size = options.block_size;
//   fopts.remove_on_close = false;        // survive the crash
//   auto device = FileBlockDevice::Open(device_path, fopts);
//   auto tree = LsmTree::Open(options, device.value().get(),
//                             CreatePolicy(PolicyKind::kChooseBest));
//   ... tree.Put(...) ...
//   SaveManifestToFile(tree, manifest_path);      // checkpoint
//   auto wal = WalWriter::Open(wal_path);
//   wal->Append(Record::Put(k, payload));         // log BEFORE apply
//   tree.Put(k, payload);
//   wal->Sync();
//
//   // session 2 — recovery side:
//   auto manifest = LoadManifestFromFile(manifest_path);
//   fopts.truncate = false;                       // reopen, don't wipe
//   auto device = FileBlockDevice::Open(device_path, fopts);
//   device->RestoreLive(<block ids listed in the manifest>);
//   auto tree = LsmTree::Restore(manifest.value(), device.value().get(),
//                                CreatePolicy(PolicyKind::kChooseBest));
//   for (const Record& r : WalReader::ReadAll(wal_path).value())
//     r.is_tombstone() ? tree.Delete(r.key) : tree.Put(r.key, r.payload);
//
// Db adds the parts a hand-rolled loop gets wrong: the manifest is
// written to a tmp file, fsynced, renamed, and the directory fsynced;
// blocks referenced by the last durable manifest are pinned (their slots
// not recycled) until the next checkpoint lands; a torn WAL tail is
// detected, dropped, and truncated away before new appends; and every
// durable failure poisons the instance so a half-applied operation can
// never be observed. tests/integration/crash_sweep_test.cc drives a
// fault-injected crash at every one of those steps.
// -------------------------------------------------------------------

#include <cstdio>
#include <iostream>

#include "src/db/db.h"
#include "src/util/logging.h"
#include "src/workload/driver.h"

using namespace lsmssd;

namespace {

DbOptions DemoOptions() {
  DbOptions dbopts;
  dbopts.options.payload_size = 64;
  dbopts.options.level0_capacity_blocks = 32;
  dbopts.options.bloom_bits_per_key = 10;
  dbopts.checkpoint_wal_bytes = 0;  // Explicit checkpoints only (demo).
  dbopts.wal_sync_mode = WalSyncMode::kEveryN;
  dbopts.wal_sync_every_n = 64;
  return dbopts;
}

int Session1(const std::string& dir) {
  const DbOptions dbopts = DemoOptions();
  auto db_or = Db::Open(dbopts, dir);
  LSMSSD_CHECK(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();

  // Checkpointed history: 20k orders.
  for (Key k = 0; k < 20'000; ++k) {
    LSMSSD_CHECK(db.Put(k, MakePayload(db.options(), k)).ok());
  }
  LSMSSD_CHECK(db.Checkpoint().ok());
  std::cout << "session 1: checkpointed " << db.tree()->TotalRecords()
            << " records across " << db.tree()->num_levels() << " levels\n";

  // Post-checkpoint writes live only in the WAL (+ the in-memory L0).
  for (Key k = 20'000; k < 20'500; ++k) {
    LSMSSD_CHECK(db.Put(k, MakePayload(db.options(), k)).ok());
  }
  for (Key k = 0; k < 100; ++k) {
    LSMSSD_CHECK(db.Delete(k * 7).ok());
  }
  LSMSSD_CHECK(db.SyncWal().ok());
  std::cout << "session 1: logged 600 post-checkpoint requests, then "
               "\"crashed\" without checkpointing again\n";
  // "Crash": drop the Db without a checkpoint. The synced WAL carries
  // the 600-request tail across the restart.
  return 0;
}

int Session2(const std::string& dir) {
  auto db_or = Db::Open(DemoOptions(), dir);
  LSMSSD_CHECK(db_or.ok()) << db_or.status().ToString();
  Db& db = *db_or.value();
  const DbStats stats = db.Stats();
  std::cout << "session 2: restored " << stats.recovery_manifest_blocks
            << " blocks from the manifest, replayed "
            << stats.recovery_wal_entries_replayed << " WAL entries\n";

  // Verify a few invariants of the recovered state.
  LSMSSD_CHECK(db.tree()->CheckInvariants().ok());
  int errors = 0;
  errors += !db.Get(20'499).ok();               // Post-checkpoint put.
  errors += !db.Get(0).status().IsNotFound();   // Deleted (0*7).
  errors += !db.Get(20'000 - 1).ok();           // Checkpointed put.
  std::cout << (errors == 0 ? "recovery verified: all probes correct\n"
                            : "RECOVERY MISMATCH\n");
  std::cout << db.Stats().ToString();
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workdir = argc > 1 ? argv[1] : "/tmp";
  const std::string dir = workdir + "/lsmssd_demo_db";
  // Fresh demo directory each run.
  std::remove(Db::ManifestPath(dir).c_str());
  std::remove(Db::ManifestTmpPath(dir).c_str());
  std::remove(Db::DevicePath(dir).c_str());
  std::remove(Db::WalPath(dir).c_str());

  const int rc1 = Session1(dir);
  if (rc1 != 0) return rc1;
  return Session2(dir);
}
