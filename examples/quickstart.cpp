// Quickstart: open a durable Db, write, read, scan, delete, and inspect
// the statistics. Db is the single entry point for applications — it owns
// the block device, write-ahead log, and checkpoint manifest under one
// directory and recovers automatically on reopen (see
// examples/durable_restart.cpp for the crash/restart walkthrough).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [workdir]
//
// Research code that wants precise write-count accounting on an
// in-memory device can keep using the LsmTree layer directly:
//
//   MemBlockDevice device(options.block_size);
//   auto tree = LsmTree::Open(options, &device,
//                             CreatePolicy(PolicyKind::kChooseBest));
//
// — that is exactly what the fig* benches do; Db adds durability on top
// without changing the merge/write path.

#include <iostream>

#include "src/db/db.h"

using namespace lsmssd;

int main(int argc, char** argv) {
  const std::string dir =
      (argc > 1 ? std::string(argv[1]) : std::string("/tmp")) +
      "/lsmssd_quickstart";

  // 1. Configure. Format defaults mirror the paper's setup (4 KB blocks,
  //    100-byte payloads, Gamma = 10); we shrink K0 so merges happen
  //    quickly in a demo.
  DbOptions dbopts;
  dbopts.options.level0_capacity_blocks = 16;  // Tiny L0: merges early.
  dbopts.options.cache_blocks = 128;     // Buffer cache for the read path.
  dbopts.options.bloom_bits_per_key = 10;  // Per-leaf Bloom filters.
  dbopts.policy = PolicyKind::kChooseBest;  // Provably-bounded partials.
  dbopts.wal_sync_mode = WalSyncMode::kEveryN;  // Group commit.
  dbopts.wal_sync_every_n = 64;

  // 2. Open (creates the directory on first run, recovers on later runs).
  auto db_or = Db::Open(dbopts, dir);
  if (!db_or.ok()) {
    std::cerr << "open failed: " << db_or.status().ToString() << "\n";
    return 1;
  }
  Db& db = *db_or.value();

  // 3. Write some records. Payloads are fixed-width. Every modification
  //    is WAL-logged before it touches the tree.
  const std::string payload_a(db.options().payload_size, 'a');
  const std::string payload_b(db.options().payload_size, 'b');
  for (Key k = 0; k < 5000; ++k) {
    if (Status st = db.Put(k * 31 + 7, payload_a); !st.ok()) {
      std::cerr << "put failed: " << st.ToString() << "\n";
      return 1;
    }
  }
  (void)db.Put(100 * 31 + 7, payload_b);  // Blind overwrite.
  (void)db.Delete(200 * 31 + 7);          // Tombstone.

  // 4. Point reads.
  auto hit = db.Get(100 * 31 + 7);
  std::cout << "Get(overwritten key): "
            << (hit.ok() ? hit.value().substr(0, 4) + "..." : "miss")
            << "\n";
  auto gone = db.Get(200 * 31 + 7);
  std::cout << "Get(deleted key): "
            << (gone.ok() ? "FOUND (bug!)" : gone.status().ToString())
            << "\n";

  // 5. Range scan.
  std::vector<std::pair<Key, std::string>> range;
  (void)db.Scan(0, 1000, &range);
  std::cout << "Scan[0,1000] -> " << range.size() << " records\n";

  // 6. Make everything durable and inspect the accounting. (Checkpoint
  //    also happens automatically when the WAL passes
  //    DbOptions::checkpoint_wal_bytes.)
  if (Status st = db.Checkpoint(); !st.ok()) {
    std::cerr << "checkpoint failed: " << st.ToString() << "\n";
    return 1;
  }
  const LsmTree& tree = *db.tree();  // Research-level introspection.
  std::cout << "\nindex has " << tree.num_levels()
            << " levels (L0 in memory + " << tree.num_levels() - 1
            << " on the device)\n";
  for (size_t i = 1; i < tree.num_levels(); ++i) {
    std::cout << "  L" << i << ": " << tree.level(i).size_blocks()
              << " blocks / capacity " << tree.LevelCapacityBlocks(i)
              << ", waste " << tree.level(i).waste_factor() << "\n";
  }
  std::cout << "\n" << db.Stats().ToString();
  std::cout << "per-level merge stats:\n" << tree.stats().ToString();
  return 0;
}
