// Quickstart: open an LSM tree on an in-memory SSD, write, read, scan,
// delete, and inspect the write statistics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "src/lsm/lsm_tree.h"
#include "src/policy/policy_factory.h"
#include "src/storage/mem_block_device.h"

using namespace lsmssd;

int main() {
  // 1. Configure. Defaults mirror the paper's setup (4 KB blocks, 100-byte
  //    payloads, Gamma = 10); we shrink K0 so merges happen quickly in a
  //    demo.
  Options options;
  options.level0_capacity_blocks = 16;  // Tiny L0: merges start early.
  options.cache_blocks = 128;           // Buffer cache for the read path.
  options.bloom_bits_per_key = 10;      // Per-leaf Bloom filters.

  // 2. Storage + tree with the ChooseBest merge policy (the paper's
  //    provably-bounded partial policy).
  MemBlockDevice device(options.block_size);
  auto tree_or =
      LsmTree::Open(options, &device, CreatePolicy(PolicyKind::kChooseBest));
  if (!tree_or.ok()) {
    std::cerr << "open failed: " << tree_or.status().ToString() << "\n";
    return 1;
  }
  LsmTree& tree = *tree_or.value();

  // 3. Write some records. Payloads are fixed-width.
  const std::string payload_a(options.payload_size, 'a');
  const std::string payload_b(options.payload_size, 'b');
  for (Key k = 0; k < 5000; ++k) {
    if (Status st = tree.Put(k * 31 + 7, payload_a); !st.ok()) {
      std::cerr << "put failed: " << st.ToString() << "\n";
      return 1;
    }
  }
  (void)tree.Put(100 * 31 + 7, payload_b);  // Blind overwrite.
  (void)tree.Delete(200 * 31 + 7);          // Tombstone.

  // 4. Point reads.
  auto hit = tree.Get(100 * 31 + 7);
  std::cout << "Get(overwritten key): "
            << (hit.ok() ? hit.value().substr(0, 4) + "..." : "miss")
            << "\n";
  auto gone = tree.Get(200 * 31 + 7);
  std::cout << "Get(deleted key): "
            << (gone.ok() ? "FOUND (bug!)" : gone.status().ToString())
            << "\n";

  // 5. Range scan.
  std::vector<std::pair<Key, std::string>> range;
  (void)tree.Scan(0, 1000, &range);
  std::cout << "Scan[0,1000] -> " << range.size() << " records\n";

  // 6. Inspect the structure and the write accounting.
  std::cout << "\nindex has " << tree.num_levels()
            << " levels (L0 in memory + " << tree.num_levels() - 1
            << " on the device)\n";
  for (size_t i = 1; i < tree.num_levels(); ++i) {
    std::cout << "  L" << i << ": " << tree.level(i).size_blocks()
              << " blocks / capacity " << tree.LevelCapacityBlocks(i)
              << ", waste " << tree.level(i).waste_factor() << "\n";
  }
  // The device line includes cache hits/misses and Bloom skips (the
  // buffer cache never absorbs writes — only reads get cheaper).
  std::cout << "\ndevice: " << device.stats().ToString() << "\n";
  std::cout << "per-level merge stats:\n" << tree.stats().ToString();
  return 0;
}
